module Entity = Repro_core.Entity
module Config = Repro_core.Config
module Pdu = Repro_pdu.Pdu
module Codec = Repro_pdu.Codec
module Simtime = Repro_sim.Simtime
module Lifecycle = Repro_obs.Lifecycle
module Registry = Repro_obs.Registry
module Wirestats = Repro_obs.Wirestats
module Trace_ctx = Repro_obs.Trace_ctx
module Monoclock = Repro_util.Monoclock

type timer = { at : Simtime.t; fn : unit -> unit }

(* Where a queued PDU is headed. [All] fans out to every peer (and a
   loopback self-copy); [One] is a point-to-point send — to self it is a
   pure in-process delivery. *)
type dest = All | One of int

type node = {
  id : int;
  socket : Unix.file_descr;
  addr : Unix.sockaddr;
  entity : Entity.t;
  wire : Config.wire_version;  (** Codec this node frames egress with. *)
  traced : bool;
      (** Attach trace ids to this node's v2 DATA frames (no effect on a
          v1 node — the v1 layout has no extension point). *)
  out : (dest * Pdu.t) Queue.t;  (** Egress queue, drained by [flush]. *)
  mutable rev_delivered : Pdu.data list;
}

(* Egress batching caps: a run of DATA PDUs to the same destination is
   packed into one v2 datagram up to these bounds. Both keep a batch
   well under the 64KiB UDP limit even with maximal ACK vectors. *)
let max_batch_pdus = 16
let max_batch_payload = 1024

type t = {
  mutable n : int;
  mutable nodes : node array;
  mutable timers : timer Repro_util.Pqueue.t;
      (* Replaced wholesale at a view change: abandoning the queue is the
         generation guard that keeps a closed epoch's heartbeat and RET
         retries from firing into the new view. *)
  base_config : Config.t;
      (* The epoch-0 template; each view change re-derives the effective
         per-epoch [cid] from it. *)
  mutable epoch : int;
  mutable view_changes : int;
  rng : Repro_util.Prng.t;
  loss : float;
  started_at_mono : int; (* Monoclock µs at creation; stamp origin *)
  started_at_wall : float;
      (* The run's single wall-clock stamp (Unix.gettimeofday at
         creation), kept only so log headers can anchor the monotonic
         stamps to calendar time. Never used in a subtraction. *)
  buf : Bytes.t;
  wirestats : Wirestats.t;
  mutable sent : int;
  mutable dropped : int;
  mutable decode_errors : int;
  mutable closed : bool;
  mutable fault_hook : (dst:int -> src:int -> bytes -> bytes list) option;
  mutable faulted : int;
  registry : Registry.t option;
  lifecycle : Lifecycle.t option;
  tracer : Trace_ctx.t option;
}

(* Monotonic microseconds since cluster creation, as the entities'
   Simtime: latency spans and timer deadlines cannot go negative or
   jump when NTP steps the wall clock mid-run. *)
let now_us t = Monoclock.now_us () - t.started_at_mono

let payload_bytes = function
  | Pdu.Data d -> String.length d.Pdu.payload
  | Pdu.Ret _ | Pdu.Ctl _ -> 0

let frame_one wire pdu =
  match wire with Config.V1 -> Codec.encode pdu | Config.V2 -> Codec.encode_v2 pdu

let send_datagram t node ~dst bytes ~pdus ~payload =
  t.sent <- t.sent + 1;
  Wirestats.record t.wirestats ~pdus ~bytes:(Bytes.length bytes)
    ~payload_bytes:payload;
  ignore
    (Unix.sendto node.socket bytes 0 (Bytes.length bytes) [] t.nodes.(dst).addr)

let ship t node dest bytes ~pdus ~payload =
  match dest with
  | All ->
    for dst = 0 to t.n - 1 do
      if dst <> node.id then send_datagram t node ~dst bytes ~pdus ~payload
    done
  | One dst -> send_datagram t node ~dst bytes ~pdus ~payload

(* A traced node attaches the deterministic trace id of each DATA item
   to its v2 batches (0xB3 frames); untraced and v1 nodes are
   byte-identical to before. *)
let encode_batch t node batch =
  match (node.traced, t.tracer) with
  | true, Some tr ->
    let salt = Trace_ctx.salt tr in
    let ids =
      Array.of_list
        (List.map
           (fun (d : Pdu.data) -> Trace_ctx.id ~salt ~src:d.src ~seq:d.seq)
           batch)
    in
    Codec.encode_data_batch_traced ~ids batch
  | true, None | false, _ -> Codec.encode_data_batch_v2 batch

(* Drain one node's egress queue: coalesce consecutive DATA runs to the
   same destination into a single v2 batch datagram (v1 nodes frame each
   PDU alone), collect the loopback self-copies, ship everything, then
   hand the self-copies to the entity in one batch. Processing those may
   enqueue more output (confirmations, RET answers), so loop until the
   queue stays empty. *)
let rec flush_node t node =
  if not (Queue.is_empty node.out) then begin
    let items = List.of_seq (Queue.to_seq node.out) in
    Queue.clear node.out;
    let rev_self = ref [] in
    let loopback pdu = rev_self := pdu :: !rev_self in
    let rec walk = function
      | [] -> ()
      | (dest, Pdu.Data d) :: rest when node.wire = Config.V2 ->
        let rec take acc payload count = function
          | (dest', Pdu.Data d') :: tail
            when dest' = dest && count < max_batch_pdus
                 && payload + String.length d'.Pdu.payload <= max_batch_payload
            ->
            take (d' :: acc)
              (payload + String.length d'.Pdu.payload)
              (count + 1) tail
          | tail -> (List.rev acc, payload, tail)
        in
        let batch, payload, rest =
          take [ d ] (String.length d.Pdu.payload) 1 rest
        in
        (match dest with
        | One dst when dst = node.id ->
          List.iter (fun d -> loopback (Pdu.Data d)) batch
        | All | One _ ->
          let bytes = encode_batch t node batch in
          ship t node dest bytes ~pdus:(List.length batch) ~payload;
          if dest = All then List.iter (fun d -> loopback (Pdu.Data d)) batch);
        walk rest
      | (dest, pdu) :: rest ->
        (match dest with
        | One dst when dst = node.id -> loopback pdu
        | All | One _ ->
          let bytes = frame_one node.wire pdu in
          ship t node dest bytes ~pdus:1 ~payload:(payload_bytes pdu);
          if dest = All then loopback pdu);
        walk rest
    in
    walk items;
    (match List.rev !rev_self with
    | [] -> ()
    | self -> Entity.receive_batch node.entity self);
    flush_node t node
  end

let flush_all t = Array.iter (fun node -> flush_node t node) t.nodes

(* Build a node whose entity is produced by [make] from actions closing
   over the node's own record (egress queue, delivery list). [t_ref] is
   indirect because epoch-0 nodes are built before the cluster record
   exists; timers always read [t.timers] at arm time, so they land in the
   current epoch's queue. *)
let make_node (t_ref : t option ref) ~id ~socket ~addr ~wire ~traced
    ~initial_buf ~rev_delivered make =
  let rec node =
    lazy
      (let actions =
         {
           Entity.broadcast =
             (fun pdu -> Queue.add (All, pdu) (Lazy.force node).out);
           unicast =
             (fun ~dst pdu -> Queue.add (One dst, pdu) (Lazy.force node).out);
           deliver =
             (fun d ->
               let node = Lazy.force node in
               node.rev_delivered <- d :: node.rev_delivered);
           now = (fun () -> now_us (Option.get !t_ref));
           set_timer =
             (fun ~delay fn ->
               let t = Option.get !t_ref in
               Repro_util.Pqueue.push t.timers { at = now_us t + delay; fn });
           available_buffer = (fun () -> initial_buf);
         }
       in
       {
         id;
         socket;
         addr;
         entity = make actions;
         wire;
         traced;
         out = Queue.create ();
         rev_delivered;
       })
  in
  Lazy.force node

(* Monotonic µs since creation for every stamp (see [now_us]); the probe
   serves the lifecycle tracker (iff instrumented) and the trace recorder
   (iff tracing), like the simulated cluster's. Re-applied to the fresh
   entities after a view change — note the [entity] label is the node's
   {e rank}, which remaps across epochs. *)
let attach_probe t node =
  let id = node.id in
  let received =
    Option.map
      (fun reg ->
        Registry.counter reg
          ~help:"Data PDUs received, including duplicates and out-of-order"
          ~name:"co_pdus_received_total"
          [ ("entity", string_of_int id) ])
      t.registry
  in
  let now () = now_us t in
  let backoff_h =
    Option.map
      (fun reg ->
        Registry.histogram reg
          ~help:"RET retry delay after each backoff step, microseconds"
          ~name:"co_ret_backoff_us"
          [ ("entity", string_of_int id) ])
      t.registry
  in
  let lc f = match t.lifecycle with Some l -> f l | None -> () in
  let tr f = match t.tracer with Some r -> f r | None -> () in
  let is_data d = not (Pdu.is_confirmation d) in
  Entity.set_probe node.entity
    {
      Entity.on_submit =
        (fun () -> lc (fun l -> Lifecycle.submit l ~src:id ~now:(now ())));
      on_transmit =
        (fun d ->
          lc (fun l ->
              Lifecycle.first_send l ~src:d.src ~seq:d.seq ~data:(is_data d)
                ~now:(now ()));
          if is_data d then
            tr (fun r -> Trace_ctx.on_send r ~src:d.src ~seq:d.seq ~now:(now ())));
      on_receive =
        (fun d ->
          (match received with Some c -> Registry.inc c | None -> ());
          if is_data d then
            tr (fun r ->
                Trace_ctx.on_receive r ~entity:id ~src:d.src ~seq:d.seq
                  ~now:(now ())));
      on_park =
        (fun d ->
          if is_data d then
            tr (fun r -> Trace_ctx.on_park r ~entity:id ~src:d.src ~seq:d.seq));
      on_accept =
        (fun d ->
          lc (fun l ->
              Lifecycle.accept l ~entity:id ~src:d.src ~seq:d.seq
                ~data:(is_data d) ~now:(now ()));
          if is_data d then
            tr (fun r ->
                Trace_ctx.on_accept r ~entity:id ~src:d.src ~seq:d.seq
                  ~now:(now ())));
      on_preack =
        (fun d ->
          lc (fun l ->
              Lifecycle.preack l ~entity:id ~src:d.src ~seq:d.seq
                ~data:(is_data d) ~now:(now ()));
          if is_data d then
            tr (fun r ->
                Trace_ctx.on_preack r ~entity:id ~src:d.src ~seq:d.seq
                  ~now:(now ())));
      on_ack =
        (fun d ->
          lc (fun l ->
              Lifecycle.ack l ~entity:id ~src:d.src ~seq:d.seq
                ~data:(is_data d) ~now:(now ())));
      on_deliver =
        (fun d ->
          lc (fun l ->
              Lifecycle.deliver l ~entity:id ~src:d.src ~seq:d.seq
                ~now:(now ()));
          tr (fun r ->
              Trace_ctx.on_deliver r ~entity:id ~src:d.src ~seq:d.seq
                ~now:(now ())));
      on_deliver_batch =
        (fun size -> lc (fun l -> Lifecycle.deliver_batch l ~size));
      on_ret_backoff =
        (fun delay ->
          match backoff_h with
          | Some h -> Registry.observe h delay
          | None -> ());
    }

let create ?registry ?(loss = 0.) ?(seed = 0) ?(config = Config.default) ?wires
    ?traced ~n () =
  if n < 2 then invalid_arg "Udp_cluster.create: n must be >= 2";
  if loss < 0. || loss > 1. then invalid_arg "Udp_cluster.create: loss";
  Config.validate config;
  let wires =
    match wires with
    | None -> Array.make n config.Config.wire
    | Some w ->
      if Array.length w <> n then invalid_arg "Udp_cluster.create: wires";
      Array.copy w
  in
  let traced =
    match traced with
    | None -> Array.make n config.Config.tracing
    | Some tr ->
      if Array.length tr <> n then invalid_arg "Udp_cluster.create: traced";
      Array.copy tr
  in
  let sockets =
    Array.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        Unix.set_nonblock fd;
        fd)
  in
  let addrs = Array.map Unix.getsockname sockets in
  let timers =
    Repro_util.Pqueue.create ~cmp:(fun a b -> Simtime.compare a.at b.at)
  in
  let t_ref = ref None in
  let nodes =
    Array.init n (fun id ->
        make_node t_ref ~id ~socket:sockets.(id) ~addr:addrs.(id)
          ~wire:wires.(id) ~traced:traced.(id)
          ~initial_buf:config.Config.initial_buf ~rev_delivered:[]
          (fun actions -> Entity.create ~config ~id ~n ~actions))
  in
  let uniform =
    Array.for_all (fun w -> w = wires.(0)) wires
  in
  let t =
    {
      n;
      nodes;
      timers;
      base_config = config;
      epoch = 0;
      view_changes = 0;
      rng = Repro_util.Prng.create ~seed;
      loss;
      started_at_mono = Monoclock.now_us ();
      started_at_wall = Unix.gettimeofday ();
      buf = Bytes.create 65536;
      wirestats =
        Wirestats.create
          ~wire:(if uniform then Config.wire_name wires.(0) else "mixed");
      sent = 0;
      dropped = 0;
      decode_errors = 0;
      closed = false;
      fault_hook = None;
      faulted = 0;
      registry;
      lifecycle =
        Option.map (fun reg -> Lifecycle.create ~registry:reg ()) registry;
      tracer =
        (if config.Config.tracing || Array.exists Fun.id traced then
           Some
             (Trace_ctx.create ~salt:(Trace_ctx.salt_of_seed ~seed) ())
         else None);
    }
  in
  t_ref := Some t;
  (if Option.is_some t.lifecycle || Option.is_some t.tracer then
     Array.iter (attach_probe t) t.nodes);
  t

let size t = t.n

let submit t ~src payload =
  ignore (Entity.submit t.nodes.(src).entity payload);
  flush_all t

let fire_due_timers t =
  let fired = ref false in
  let continue = ref true in
  while !continue do
    match Repro_util.Pqueue.peek t.timers with
    | Some timer when Simtime.compare timer.at (now_us t) <= 0 ->
      ignore (Repro_util.Pqueue.pop t.timers);
      fired := true;
      timer.fn ()
    | Some _ | None -> continue := false
  done;
  if !fired then flush_all t;
  !fired

(* Datagrams carry no entity id outside the payload; recover the sender
   from its bound source address (every entity sends from its own bound
   socket). -1 when the sender is not one of ours. *)
let src_of_addr t from =
  let rec scan i =
    if i >= t.n then -1
    else if t.nodes.(i).addr = from then i
    else scan (i + 1)
  in
  scan 0

let offer t node datagram =
  if t.loss > 0. && Repro_util.Prng.bernoulli t.rng ~p:t.loss then
    t.dropped <- t.dropped + 1
  else begin
    match Codec.decode_any datagram with
    | Ok pdus -> Entity.receive_batch node.entity pdus
    | Error _ -> t.decode_errors <- t.decode_errors + 1
  end

let drain_socket t node =
  let got = ref false in
  let continue = ref true in
  while !continue do
    match Unix.recvfrom node.socket t.buf 0 (Bytes.length t.buf) [] with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | len, from ->
      got := true;
      let datagram = Bytes.sub t.buf 0 len in
      let copies =
        match t.fault_hook with
        | None -> [ datagram ]
        | Some f ->
          let copies = f ~dst:node.id ~src:(src_of_addr t from) datagram in
          if copies = [] then t.faulted <- t.faulted + 1;
          copies
      in
      List.iter (offer t node) copies
  done;
  !got

let step t ~timeout_s =
  if t.closed then invalid_arg "Udp_cluster.step: closed";
  let fired = fire_due_timers t in
  (* Wait no longer than the next timer deadline. *)
  let timeout_s =
    match Repro_util.Pqueue.peek t.timers with
    | Some timer ->
      let until = float_of_int (timer.at - now_us t) /. 1e6 in
      max 0. (min timeout_s until)
    | None -> timeout_s
  in
  let fds = Array.to_list (Array.map (fun node -> node.socket) t.nodes) in
  match Unix.select fds [] [] timeout_s with
  | [], _, _ -> fired
  | ready, _, _ ->
    let got = ref fired in
    Array.iter
      (fun node ->
        if List.mem node.socket ready then
          if drain_socket t node then got := true)
      t.nodes;
    flush_all t;
    !got

let run_for t ~seconds =
  (* Monotonic deadline: wall-clock steps (NTP slew, manual set) must not
     stretch or truncate a bounded drive loop. *)
  let deadline = Monoclock.now_s () +. seconds in
  while Monoclock.now_s () < deadline do
    ignore (step t ~timeout_s:(min 0.01 (deadline -. Monoclock.now_s ())))
  done

let quiescent t =
  Array.for_all
    (fun node ->
      Queue.is_empty node.out
      && Entity.undelivered_data node.entity = 0
      && Entity.pending_count node.entity = 0
      && Entity.queued_requests node.entity = 0)
    t.nodes

let run_until_quiescent t ~max_seconds =
  let deadline = Monoclock.now_s () +. max_seconds in
  let rec loop () =
    if Monoclock.now_s () >= deadline then quiescent t
    else if quiescent t then begin
      (* Drain stragglers briefly; state may regress if something arrives. *)
      run_for t ~seconds:0.05;
      if quiescent t then true else loop ()
    end
    else begin
      ignore (step t ~timeout_s:0.01);
      loop ()
    end
  in
  loop ()

type change = Add_node | Remove_node of int

(* The view-change barrier's commit precondition, transport-style: every
   node has drained its protocol work and egress queue and all REQ vectors
   agree. Datagrams may still sit in kernel buffers — after the cut they
   are duplicates of PDUs every member already accepted, and the new
   epoch's cid guard fences them off. *)
let reconciled t =
  let r0 = Entity.req t.nodes.(0).entity in
  Array.for_all
    (fun node ->
      Queue.is_empty node.out
      && Entity.undelivered_data node.entity = 0
      && Entity.pending_count node.entity = 0
      && Entity.queued_requests node.entity = 0
      && Entity.req node.entity = r0)
    t.nodes

let commit_view_change t change =
  if t.closed then invalid_arg "Udp_cluster.commit_view_change: closed";
  (match change with
  | Remove_node l when l < 0 || l >= t.n ->
    invalid_arg "Udp_cluster.commit_view_change: rank out of range"
  | Remove_node _ when t.n <= 2 ->
    invalid_arg "Udp_cluster.commit_view_change: view would shrink below 2"
  | Remove_node _ | Add_node -> ());
  if not (reconciled t) then
    Error
      "cluster not reconciled: drive it to quiescence first \
       (run_until_quiescent)"
  else begin
    let old = t.nodes in
    let n_old = t.n in
    let r = Entity.req old.(0).entity in
    let epoch = t.epoch + 1 in
    let n_new, map =
      match change with
      | Add_node -> (n_old + 1, fun k -> if k < n_old then Some k else None)
      | Remove_node l -> (n_old - 1, fun k -> Some (if k < l then k else k + 1))
    in
    let inv = Array.make n_old (-1) in
    for k = 0 to n_new - 1 do
      match map k with Some o -> inv.(o) <- k | None -> ()
    done;
    let req' =
      Array.init n_new (fun k -> match map k with Some o -> r.(o) | None -> 1)
    in
    let remap_vec v =
      Array.init n_new (fun k -> match map k with Some o -> v.(o) | None -> 1)
    in
    (* Mirror of the membership layer's translate: only the sub-cut history
       of surviving sources crosses the boundary, re-homed into the new
       rank space. *)
    let headers_of e =
      List.filter_map
        (fun (src, seq, ack) ->
          if inv.(src) >= 0 && seq < r.(src) then
            Some (inv.(src), seq, remap_vec ack)
          else None)
        (Entity.header_entries e)
    in
    let config' =
      {
        t.base_config with
        Config.cid =
          Repro_member.Group.epoch_cid ~cid:t.base_config.Config.cid ~epoch;
        epoch;
      }
    in
    (* Abandoning the timer queue is the generation guard (see [t.timers]);
       the fresh entities re-arm from [kick] below. *)
    t.timers <-
      Repro_util.Pqueue.create ~cmp:(fun a b -> Simtime.compare a.at b.at);
    t.epoch <- epoch;
    t.view_changes <- t.view_changes + 1;
    let t_ref = ref (Some t) in
    (* The joiner restores the very bytes its sponsor (the lowest-ranked
       survivor) would build for its rank — the co-checkpoint-v1 state
       transfer, here shipped in-process since the joiner's socket is born
       on this host. *)
    let sponsor = match map 0 with Some o -> o | None -> assert false in
    t.nodes <-
      Array.init n_new (fun k ->
          let socket, addr, wire, traced, rev_delivered =
            match map k with
            | Some o ->
              (* Survivors keep their sockets: datagrams already in their
                 kernel buffers become the stale stragglers the cid guard
                 must fence. Delivery history continues across epochs. *)
              ( old.(o).socket,
                old.(o).addr,
                old.(o).wire,
                old.(o).traced,
                old.(o).rev_delivered )
            | None ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
              Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
              Unix.set_nonblock fd;
              ( fd,
                Unix.getsockname fd,
                t.base_config.Config.wire,
                t.base_config.Config.tracing,
                [] )
          in
          let basis =
            match map k with Some o -> old.(o).entity | None -> old.(sponsor).entity
          in
          let blob =
            Entity.bootstrap_checkpoint ~config:config' ~id:k ~n:n_new
              ~req:req' ~headers:(headers_of basis)
          in
          make_node t_ref ~id:k ~socket ~addr ~wire ~traced
            ~initial_buf:config'.Config.initial_buf ~rev_delivered
            (fun actions ->
              match
                Entity.restore ~expect_id:k ~expect_n:n_new ~config:config'
                  ~actions blob
              with
              | Ok e -> e
              | Error err ->
                invalid_arg
                  (Format.asprintf "Udp_cluster: cut bootstrap rejected: %a"
                     Entity.pp_restore_error err)));
    t.n <- n_new;
    (match change with
    | Remove_node l -> (
      (* The leaver's socket dies with its epoch; stale datagrams queued on
         it vanish — uniformly forgotten, which is legal post-barrier (no
         member still needs them). *)
      try Unix.close old.(l).socket with Unix.Unix_error _ -> ())
    | Add_node -> ());
    (if Option.is_some t.lifecycle || Option.is_some t.tracer then
       Array.iter (attach_probe t) t.nodes);
    Array.iter (fun node -> Entity.kick node.entity) t.nodes;
    flush_all t;
    Ok ()
  end

let epoch t = t.epoch
let view_changes t = t.view_changes

let deliveries t ~entity = List.rev t.nodes.(entity).rev_delivered

let entity t i = t.nodes.(i).entity

let port t i =
  match t.nodes.(i).addr with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Udp_cluster.port: not an inet socket"

let set_fault_hook t f = t.fault_hook <- Some f
let clear_fault_hook t = t.fault_hook <- None
let datagrams_sent t = t.sent
let datagrams_dropped t = t.dropped
let datagrams_faulted t = t.faulted
let decode_errors t = t.decode_errors
let lifecycle t = t.lifecycle
let tracer t = t.tracer
let started_at_wall t = t.started_at_wall
let wirestats t = t.wirestats

let sync_registry t =
  match t.registry with
  | None -> ()
  | Some reg ->
    Array.iter
      (fun node ->
        Repro_core.Metrics.to_registry (Entity.metrics node.entity) reg
          ~labels:[ ("entity", string_of_int node.id) ])
      t.nodes;
    let c ~help name v =
      Registry.counter_set (Registry.counter reg ~help ~name []) v
    in
    c ~help:"UDP datagrams put on the wire" "co_udp_datagrams_sent_total"
      t.sent;
    c ~help:"Incoming datagrams dropped by injected loss"
      "co_udp_datagrams_dropped_total" t.dropped;
    c ~help:"Datagrams that failed PDU decoding" "co_udp_decode_errors_total"
      t.decode_errors;
    c ~help:"Committed membership view changes" "co_view_changes_total"
      t.view_changes;
    Wirestats.to_registry t.wirestats reg

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun node -> try Unix.close node.socket with Unix.Unix_error _ -> ()) t.nodes
  end
