(** The CO protocol over real UDP sockets.

    The {!Repro_core.Entity} state machine is transport-agnostic; this module
    runs a whole cluster of them over loopback UDP datagrams in real time —
    one socket per entity, PDUs serialized with {!Repro_pdu.Codec}, timers
    against the wall clock, a single-threaded [select] event loop. UDP
    supplies genuine reordering-free-but-lossy per-channel semantics close to
    the paper's MC service; an optional iid drop filter adds deterministic
    loss for tests.

    This is the "production" face of the library: what a deployment on a real
    LAN segment would look like, minus multicast group management. *)

type t

val create :
  ?registry:Repro_obs.Registry.t ->
  ?loss:float ->
  ?seed:int ->
  ?config:Repro_core.Config.t ->
  ?wires:Repro_core.Config.wire_version array ->
  ?traced:bool array ->
  n:int ->
  unit ->
  t
(** Bind [n] UDP sockets on ephemeral loopback ports and attach one CO entity
    to each. [loss] drops incoming datagrams iid (before decode, never for an
    entity's own loopback, which is delivered in-process). [registry]
    enables receipt-ladder telemetry: every entity gets a probe stamping
    {e monotonic-clock} microseconds into a {!Repro_obs.Lifecycle.t} (see
    {!sync_registry}); the one wall-clock stamp the cluster keeps is
    {!started_at_wall}, for log headers.

    [wires] sets the codec version each node {e frames egress with}
    (default: every node uses [config.wire]); ingress always dispatches on
    the version byte, so mixed-version clusters interoperate during a
    rollout. A v2 node coalesces each burst of outgoing DATA PDUs to the
    same destination into one batch datagram; a v1 node frames one PDU per
    datagram.

    [traced] sets, per node, whether v2 DATA batches are framed as traced
    0xB3 datagrams carrying trace ids (default: every node follows
    [config.tracing]); it has no effect on a v1 node's egress. Untraced
    receivers decode 0xB3 and discard the ids, so traced/untraced clusters
    interoperate too. If any node is traced (or [config.tracing] is set) the
    cluster also keeps a {!Repro_obs.Trace_ctx.t} recorder fed by the entity
    probes — see {!tracer}.

    @raise Invalid_argument if [wires] or [traced] has length <> [n].
    @raise Unix.Unix_error if sockets cannot be created. *)

val size : t -> int

val submit : t -> src:int -> string -> unit
(** Issue a DT request at entity [src] immediately. *)

val step : t -> timeout_s:float -> bool
(** Run one event-loop iteration: fire due timers, then wait up to
    [timeout_s] for datagrams and process them. Returns [false] when nothing
    happened (no timer fired, no datagram arrived). *)

val run_for : t -> seconds:float -> unit
(** Drive the loop for a real-time duration, measured on the monotonic
    clock (immune to wall-clock steps). *)

val run_until_quiescent : t -> max_seconds:float -> bool
(** Drive the loop until every entity has no undelivered data, no pending
    out-of-sequence PDUs and no queued requests (then drain briefly), or the
    deadline passes. Returns whether quiescence was reached. *)

(** An administrative membership change. [Add_node] binds a fresh socket
    and joins it as the new view's last rank; [Remove_node l] closes rank
    [l]'s socket and shifts higher ranks down. *)
type change = Add_node | Remove_node of int

val reconciled : t -> bool
(** The view-change barrier's commit precondition: every node has drained
    its protocol work and egress queue, and all REQ vectors agree.
    Datagrams may still sit in kernel buffers — after a cut those are
    duplicates of PDUs every member already accepted, which the next
    epoch's cid guard fences off. *)

val commit_view_change : t -> change -> (unit, string) result
(** Commit a membership change: close the epoch, remap every survivor's
    REQ baseline and accepted-header table into the new rank space, and
    rebuild each member from a {!Repro_core.Entity.bootstrap_checkpoint}
    under the next epoch's derived cid
    ({!Repro_member.Group.epoch_cid}). A joiner restores the sponsor's
    (rank 0's) blob — the co-checkpoint-v1 state transfer, shipped
    in-process since its socket is born here. The closing epoch's timers
    are abandoned (a dead epoch's heartbeat or RET retry never fires into
    the new view) and every new entity is {!Repro_core.Entity.kick}ed.

    This is the {e mechanism} half of membership over real sockets: the
    caller plays coordinator and must first drive the cluster to the
    barrier ({!run_until_quiescent}); [Error] reports an unmet
    {!reconciled} precondition and commits nothing. The full timer-driven
    barrier protocol (quiesce/reconcile/repair, suspicion-driven eviction)
    lives in {!Repro_member.Group} over the simulated medium.

    @raise Invalid_argument on a closed cluster, an out-of-range rank, or
    a removal that would shrink the view below 2. *)

val epoch : t -> int
(** Committed membership epoch (0 at creation). *)

val view_changes : t -> int
(** Committed view changes (mirrored as [co_view_changes_total] by
    {!sync_registry}). *)

val deliveries : t -> entity:int -> Repro_pdu.Pdu.data list
(** Application deliveries at [entity], in causal delivery order — across
    epochs for a member that survived view changes. *)

val entity : t -> int -> Repro_core.Entity.t

val port : t -> int -> int
(** UDP port entity [i] is bound to on 127.0.0.1 (e.g. to point an external
    packet source, or a test injecting hostile datagrams, at it). *)

val set_fault_hook : t -> (dst:int -> src:int -> bytes -> bytes list) -> unit
(** [set_fault_hook t f]: every incoming datagram is first mapped through
    [f ~dst ~src dg] ([src] is the sending entity resolved from the
    datagram's source address, or [-1] if external), which returns the
    copies actually processed: [[]] discards it, a mangled copy models
    in-flight corruption (the decode path then rejects it via the codec
    checksum, counted in {!decode_errors}), several copies model
    duplication. This is the same contract as the simulator's
    {!Repro_sim.Network.set_fault_hook}, so one
    {!Repro_fault.Injector.on_datagram} closure serves both transports.
    Replaces any previous hook. *)

val clear_fault_hook : t -> unit

val datagrams_sent : t -> int
val datagrams_dropped : t -> int

val datagrams_faulted : t -> int
(** Datagrams the fault hook discarded outright. *)

val decode_errors : t -> int
(** Datagrams the decode path rejected (one per bad datagram, however many
    PDUs it claimed to carry). *)

val wirestats : t -> Repro_obs.Wirestats.t
(** Egress wire accounting: datagrams, PDUs, total and header bytes put on
    the wire (loopback self-copies excluded — they never serialize). The
    [wire] label is the uniform version name, or ["mixed"]. *)

val lifecycle : t -> Repro_obs.Lifecycle.t option
(** The per-PDU lifecycle tracker, present iff [create] got a [?registry]. *)

val tracer : t -> Repro_obs.Trace_ctx.t option
(** The causal-trace recorder, present iff [config.tracing] or any [traced]
    node; its salt is derived from [seed]. Feed its spans to
    {!Repro_obs.Critpath} for delay attribution and Perfetto export. *)

val started_at_wall : t -> float
(** [Unix.gettimeofday] at creation — the run's single wall-clock stamp,
    kept for log/report headers only. All probe stamps and deadlines use
    the monotonic clock and are only meaningful relative to each other. *)

val sync_registry : t -> unit
(** Mirror per-entity protocol counters, the datagram totals, and the
    {!wirestats} gauges into the registry passed at [create]. Idempotent;
    no-op without one. *)

val close : t -> unit
(** Close all sockets. The [t] must not be used afterwards. *)
