type t = int array
(* Invariant: never mutated after construction; all operations copy. *)

type order = Before | After | Equal | Concurrent

let zero ~n =
  if n <= 0 then invalid_arg "Vector_clock.zero: n must be > 0";
  Array.make n 0

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector_clock.of_array: empty";
  Array.iter
    (fun x -> if x < 0 then invalid_arg "Vector_clock.of_array: negative")
    a;
  Array.copy a

let to_array v = Array.copy v

let size = Array.length

let get v i = v.(i)

let incr v i =
  let w = Array.copy v in
  w.(i) <- w.(i) + 1;
  w

let remap v ~n ~map =
  if n <= 0 then invalid_arg "Vector_clock.remap: n must be > 0";
  Array.init n (fun i ->
      match map i with
      | None -> 0
      | Some old ->
        if old < 0 || old >= Array.length v then
          invalid_arg "Vector_clock.remap: map index out of range";
        v.(old))

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.merge: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b = Array.length a = Array.length b && leq a b && leq b a

let compare_partial a b =
  let ab = leq a b and ba = leq b a in
  match (ab, ba) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let causally_ready ~sender ~msg ~local =
  if Array.length msg <> Array.length local then
    invalid_arg "Vector_clock.causally_ready: size mismatch";
  let ok = ref (msg.(sender) = local.(sender) + 1) in
  Array.iteri (fun k x -> if k <> sender && x > local.(k) then ok := false) msg;
  !ok

let pp ppf v =
  Format.fprintf ppf "⟨%s⟩"
    (String.concat "," (Array.to_list (Array.map string_of_int v)))

let to_string v = Format.asprintf "%a" pp v
