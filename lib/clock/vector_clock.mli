(** Vector clocks (Fidge/Mattern), as used by ISIS CBCAST.

    A vector clock for a cluster of [n] entities is an [n]-vector of event
    counts. The CBCAST baseline stamps every message with the sender's vector
    and delivers by the standard causal-delivery rule; the oracle uses vector
    comparison as the ground truth for the happened-before relation. *)

type t
(** Immutable vector timestamp. *)

type order = Before | After | Equal | Concurrent

val zero : n:int -> t
(** All-zeros vector for a cluster of [n] entities. *)

val of_array : int array -> t
(** Copies the array. @raise Invalid_argument on an empty array or negative
    component. *)

val to_array : t -> int array
(** Fresh copy. *)

val size : t -> int
val get : t -> int -> int

val incr : t -> int -> t
(** [incr v i] is [v] with component [i] incremented — the send/local rule. *)

val remap : t -> n:int -> map:(int -> int option) -> t
(** [remap v ~n ~map] resizes [v] for a membership change: component [i] of
    the result is [v.(j)] when [map i = Some j] (a surviving member's old
    index) and 0 when [map i = None] (a fresh joiner). Components of
    departed members are dropped by not being in the image of [map].
    @raise Invalid_argument if [n <= 0] or a mapped index is out of
    range. *)

val merge : t -> t -> t
(** Component-wise maximum — the receive rule (before the local increment).
    @raise Invalid_argument on size mismatch. *)

val compare_partial : t -> t -> order
(** Partial order: [Before] iff [a <= b] pointwise and [a <> b]. *)

val leq : t -> t -> bool
(** [leq a b] iff [a] pointwise <= [b]. *)

val equal : t -> t -> bool

val causally_ready : sender:int -> msg:t -> local:t -> bool
(** CBCAST delivery condition for a message stamped [msg] from [sender] at a
    receiver whose clock is [local]:
    [msg.(sender) = local.(sender) + 1] and [msg.(k) <= local.(k)] for all
    [k <> sender]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
