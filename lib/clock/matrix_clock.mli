(** n×n matrix clock — the abstract structure behind the protocol's AL/PAL.

    Row [j] holds what this entity knows entity [j] has seen: in the CO
    protocol [AL.(j).(k)] is "the sequence number entity [j] expects next from
    entity [k]". The two derived quantities the protocol uses are the
    column minima: [col_min m k] = the highest sequence number everyone is
    known to have passed for source [k] — exactly the paper's [minAL_k] /
    [minPAL_k]. *)

type t
(** Mutable n×n matrix of non-negative ints. *)

val create : n:int -> init:int -> t
val size : t -> int
val get : t -> row:int -> col:int -> int

val set : t -> row:int -> col:int -> int -> unit
(** Plain assignment (used by the acceptance action, which overwrites row
    [src] with the PDU's ACK vector). *)

val raise_to : t -> row:int -> col:int -> int -> unit
(** Monotone assignment: [raise_to m ~row ~col v] sets the cell to
    [max current v]. Retransmitted (old) PDUs must never move knowledge
    backwards. *)

val set_row : t -> row:int -> int array -> unit
(** Overwrite a whole row monotonically (each cell raised, never lowered).
    @raise Invalid_argument on length mismatch. *)

val row : t -> int -> int array
(** Fresh copy of a row. *)

val col_min : t -> int -> int
(** [col_min m k] = min over rows j of [m.(j).(k)] — the paper's [min AL_k].
    Cached incrementally: O(1) unless an update since the last query touched
    the column's minimal cell, then one O(n) rescan. *)

val col_min_all : t -> int array
(** All column minima at once. *)

val remap : t -> n:int -> init:int -> map:(int -> int option) -> t
(** [remap m ~n ~init ~map] builds the matrix for a resized membership view:
    cell [(r, c)] of the result is [m.(r').(c')] when both indices map to
    surviving old indices ([map r = Some r'], [map c = Some c']), and [init]
    when either side is a fresh joiner ([None]) — a joiner starts with no
    knowledge and nothing is known about it. Departed members' rows and
    columns are dropped by not being in the image of [map].
    @raise Invalid_argument if [n <= 0] or a mapped index is out of
    range. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
