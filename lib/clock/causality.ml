type t = {
  n : int;
  clocks : Vector_clock.t array;
  send_stamps : (int, Vector_clock.t) Hashtbl.t;
}

let create ~n =
  {
    n;
    clocks = Array.init n (fun _ -> Vector_clock.zero ~n);
    send_stamps = Hashtbl.create 256;
  }

let send t ~entity ~msg =
  if Hashtbl.mem t.send_stamps msg then
    invalid_arg "Causality.send: message already sent";
  let clock = Vector_clock.incr t.clocks.(entity) entity in
  t.clocks.(entity) <- clock;
  Hashtbl.add t.send_stamps msg clock

let receive t ~entity ~msg =
  let stamp = Hashtbl.find t.send_stamps msg in
  let merged = Vector_clock.merge t.clocks.(entity) stamp in
  t.clocks.(entity) <- Vector_clock.incr merged entity

let local t ~entity = t.clocks.(entity) <- Vector_clock.incr t.clocks.(entity) entity

let send_stamp t msg = Hashtbl.find_opt t.send_stamps msg

let msg_precedes t p q =
  let sp = Hashtbl.find t.send_stamps p in
  let sq = Hashtbl.find t.send_stamps q in
  match Vector_clock.compare_partial sp sq with
  | Vector_clock.Before -> true
  | Vector_clock.After | Vector_clock.Equal | Vector_clock.Concurrent -> false

let msg_concurrent t p q =
  p <> q && (not (msg_precedes t p q)) && not (msg_precedes t q p)

let clock_of t entity = t.clocks.(entity)
