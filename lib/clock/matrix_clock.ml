(* Column minima are the protocol's hottest derived quantity (minAL/minPAL
   gate every PACK and ACK decision), so they are cached: [colmin.(k)] holds
   the last computed minimum of column [k] and [dirty.(k)] marks it stale.
   A cell update can only change the minimum if it touches a cell currently
   AT the minimum (monotone raises never lower it below colmin), so queries
   are O(1) until the minimal cell itself moves — then one O(n) rescan. *)
type t = {
  n : int;
  cells : int array array;
  colmin : int array;
  dirty : bool array;
}

let create ~n ~init =
  if n <= 0 then invalid_arg "Matrix_clock.create: n must be > 0";
  {
    n;
    cells = Array.init n (fun _ -> Array.make n init);
    colmin = Array.make n init;
    dirty = Array.make n false;
  }

let size m = m.n

let get m ~row ~col = m.cells.(row).(col)

let set m ~row ~col v =
  m.cells.(row).(col) <- v;
  m.dirty.(col) <- true

let raise_to m ~row ~col v =
  let cur = m.cells.(row).(col) in
  if v > cur then begin
    m.cells.(row).(col) <- v;
    if (not m.dirty.(col)) && cur = m.colmin.(col) then m.dirty.(col) <- true
  end

let set_row m ~row values =
  if Array.length values <> m.n then
    invalid_arg "Matrix_clock.set_row: length mismatch";
  Array.iteri (fun col v -> raise_to m ~row ~col v) values

let row m i = Array.copy m.cells.(i)

let col_min m k =
  if m.dirty.(k) then begin
    let acc = ref m.cells.(0).(k) in
    for j = 1 to m.n - 1 do
      if m.cells.(j).(k) < !acc then acc := m.cells.(j).(k)
    done;
    m.colmin.(k) <- !acc;
    m.dirty.(k) <- false
  end;
  m.colmin.(k)

let col_min_all m = Array.init m.n (col_min m)

let remap m ~n ~init ~map =
  if n <= 0 then invalid_arg "Matrix_clock.remap: n must be > 0";
  let old_of = Array.init n map in
  Array.iter
    (function
      | Some j when j < 0 || j >= m.n ->
        invalid_arg "Matrix_clock.remap: map index out of range"
      | Some _ | None -> ())
    old_of;
  let cell r c =
    match (old_of.(r), old_of.(c)) with
    | Some r', Some c' -> m.cells.(r').(c')
    | (Some _ | None), _ -> init
  in
  let out = create ~n ~init in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      set out ~row:r ~col:c (cell r c)
    done
  done;
  out

let copy m =
  {
    n = m.n;
    cells = Array.map Array.copy m.cells;
    colmin = Array.copy m.colmin;
    dirty = Array.copy m.dirty;
  }

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r ->
      Format.fprintf ppf "[%s]@,"
        (String.concat " " (Array.to_list (Array.map string_of_int r))))
    m.cells;
  Format.fprintf ppf "@]"
