(** The committed audit baseline ([analysis/audit_baseline.json]): the
    set of accepted, annotated findings that CI diffs against.

    The baseline stores one entry per finding {e key} (file + rule +
    detail — no line numbers, see {!Finding.key}) with an occurrence
    count and a free-text annotation. [check] fails iff some key's
    current unwaived count exceeds its baseline count ("new finding");
    counts that shrank are reported as stale so the baseline can be
    pruned, but do not fail — deleting code must never break CI. *)

type entry = { key : string; count : int; why : string }
type t = { version : int; entries : entry list }

val empty : t

val load : string -> (t, string) result
val save : string -> t -> unit

val of_findings : ?old:t -> Finding.t list -> t
(** Build a baseline from the current unwaived findings, carrying over
    [why] annotations from [old] for keys that survive. *)

type diff = {
  fresh : Finding.t list;
      (** Findings beyond the baselined count for their key, i.e. what
          [check] fails on. For a key with baseline count [b] and current
          count [c > b], the last [c - b] occurrences in source order. *)
  stale : entry list;
      (** Baseline entries whose count shrank or hit zero. *)
}

val diff : t -> Finding.t list -> diff
(** [diff baseline findings] — waived findings must already be filtered
    out by the caller. *)
