(** Protocol lint rules over a parsed compilation unit. All rules are
    syntactic (parsetree, no typing), so each is stated with its
    heuristic; over- and under-approximation notes live in
    [docs/static-analysis.md].

    - [poly-compare] — bare polymorphic [compare] / [Stdlib.compare] /
      [Hashtbl.hash] anywhere (skipped in files that define their own
      top-level [compare]); and [=] / [<>] where an operand syntactically
      mentions a protocol module (clock, PDU, log types must go through
      the module's own [equal]/[compare]).
    - [catch-all-exn] — [try ... with _ ->] or [with e ->] binding every
      exception without re-raising: swallows protocol errors, asserts and
      [Out_of_memory] alike.
    - [obj-magic] — any use of [Obj.magic].
    - [hashtbl-iter-mutation] — [Hashtbl.add]/[remove]/[replace]/...
      applied to table [t] inside [Hashtbl.iter]/[fold] over the same
      [t]: unspecified behavior.
    - [stdout-in-lib] — [print_string]/[Printf.printf]/[Format.printf]
      and friends inside [lib/]: protocol code must report through [Obs]
      or return strings; direct stdout is reserved for [bin/]. *)

val rules : string list
(** The rule identifiers above, in report order. *)

val default_protocol_modules : string list
(** The repo's clock/PDU/log modules whose values must not meet
    polymorphic comparison. *)

val scan :
  file:string ->
  ?protocol_modules:string list ->
  Parsetree.structure ->
  Finding.t list
(** [file] decides the [lib/] rules (paths under ["lib/"]).
    [protocol_modules] defaults to the repo's clock/PDU/log modules.
    Waivers are applied by the caller. *)
