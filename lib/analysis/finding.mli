(** One audit finding: a mutable-state site from the inventory pass or a
    protocol-lint violation. The {!key} deliberately excludes line and
    column so a finding keeps its baseline identity when unrelated edits
    move it; the baseline stores a per-key occurrence count instead. *)

type classification =
  | Domain_confined
      (** Not reachable from any cross-domain entry point, or provably
          per-invocation scratch: stays correct with one domain per
          entity. *)
  | Needs_atomic
      (** Single-word state (scalar [ref], [Atomic], immediate mutable
          field) reachable from an entry point: a candidate for
          [Atomic.t] in the multicore refactor. *)
  | Needs_lock
      (** Multi-word structure (Hashtbl, Buffer, Bytes, ring, compound
          record) reachable from an entry point: needs a lock, a
          domain-local copy, or a redesign before domains share it. *)

val classification_name : classification -> string

type t = {
  rule : string;  (** ["mutable-site"] or a lint rule id. *)
  file : string;  (** Path relative to the audit root. *)
  line : int;
  col : int;
  detail : string;  (** Human description; stable across line drift. *)
  classification : classification option;  (** Inventory findings only. *)
  waiver : string option;
      (** Reason from an enclosing [[\@coaudit.allow "reason"]]. *)
}

val make :
  ?classification:classification ->
  ?waiver:string ->
  rule:string ->
  file:string ->
  loc:Location.t ->
  string ->
  t

val key : t -> string
(** Baseline identity: [file ^ "|" ^ rule ^ "|" ^ detail]. *)

val is_waived : t -> bool

val compare : t -> t -> int
(** Order by file, then line, then column, then rule — report order. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Jsonx.t
