open Parsetree
open Ast_iterator

type iface = {
  vals : string list;
  abstract_types : string list;  (** declared with no manifest and no kind *)
}

type t = {
  nodes : (string, unit) Hashtbl.t;
  edges : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  ifaces : (string, iface) Hashtbl.t;
}

let add_edge t src dst =
  if src <> dst then begin
    let succs =
      match Hashtbl.find_opt t.edges src with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.add t.edges src s;
        s
    in
    Hashtbl.replace succs dst ()
  end

(* Every capitalized component of every longident in the AST; membership
   in [nodes] filters stdlib/external modules out afterwards. *)
let lid_components acc lid =
  List.iter
    (fun comp ->
      if String.length comp > 0 && comp.[0] >= 'A' && comp.[0] <= 'Z' then
        acc := comp :: !acc)
    (Longident.flatten lid)

let refs_of_structure structure =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident lid
    | Pexp_construct (lid, _)
    | Pexp_field (_, lid)
    | Pexp_setfield (_, lid, _)
    | Pexp_new lid ->
      lid_components acc lid.Location.txt
    | Pexp_record (fields, _) ->
      List.iter (fun (lid, _) -> lid_components acc lid.Location.txt) fields
    | _ -> ());
    super.expr it e
  in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) -> lid_components acc lid.Location.txt
    | Ppat_record (fields, _) ->
      List.iter (fun (lid, _) -> lid_components acc lid.Location.txt) fields
    | _ -> ());
    super.pat it p
  in
  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr (lid, _) | Ptyp_class (lid, _) ->
      lid_components acc lid.Location.txt
    | _ -> ());
    super.typ it ty
  in
  let module_expr it me =
    (match me.pmod_desc with
    | Pmod_ident lid -> lid_components acc lid.Location.txt
    | _ -> ());
    super.module_expr it me
  in
  let open_description it od =
    lid_components acc od.popen_expr.Location.txt;
    super.open_description it od
  in
  let it =
    { super with expr; pat; typ; module_expr; open_description }
  in
  it.structure it structure;
  !acc

let iface_of_signature signature =
  let vals = ref [] and abstract_types = ref [] in
  List.iter
    (fun item ->
      match item.psig_desc with
      | Psig_value vd -> vals := vd.pval_name.Location.txt :: !vals
      | Psig_type (_, decls) ->
        List.iter
          (fun d ->
            match (d.ptype_kind, d.ptype_manifest) with
            | Ptype_abstract, None ->
              abstract_types := d.ptype_name.Location.txt :: !abstract_types
            | _ -> ())
          decls
      | _ -> ())
    signature;
  { vals = !vals; abstract_types = !abstract_types }

let build sources =
  let t =
    {
      nodes = Hashtbl.create 64;
      edges = Hashtbl.create 64;
      ifaces = Hashtbl.create 64;
    }
  in
  List.iter
    (fun src -> Hashtbl.replace t.nodes (Source.module_name src) ())
    sources;
  List.iter
    (fun src ->
      let name = Source.module_name src in
      match src.Source.ast with
      | Source.Signature sg -> Hashtbl.replace t.ifaces name (iface_of_signature sg)
      | Source.Structure st ->
        List.iter
          (fun comp ->
            if Hashtbl.mem t.nodes comp then add_edge t name comp)
          (refs_of_structure st))
    sources;
  t

let known t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.nodes []
  |> List.sort String.compare

let reachable t ~entries =
  let seen = Hashtbl.create 64 in
  let rec visit m =
    if Hashtbl.mem t.nodes m && not (Hashtbl.mem seen m) then begin
      Hashtbl.add seen m ();
      match Hashtbl.find_opt t.edges m with
      | None -> ()
      | Some succs -> Hashtbl.iter (fun dst () -> visit dst) succs
    end
  in
  List.iter visit entries;
  seen

let exports t ~module_name =
  match Hashtbl.find_opt t.ifaces module_name with
  | Some iface -> iface.vals
  | None -> []

let has_interface t ~module_name = Hashtbl.mem t.ifaces module_name

let abstract_in_interface t ~module_name ~type_name =
  match Hashtbl.find_opt t.ifaces module_name with
  | Some iface -> List.mem type_name iface.abstract_types
  | None -> false
