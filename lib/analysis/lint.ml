open Parsetree
open Ast_iterator

let rules =
  [
    "poly-compare";
    "catch-all-exn";
    "obj-magic";
    "hashtbl-iter-mutation";
    "stdout-in-lib";
  ]

let default_protocol_modules =
  [
    "Matrix_clock";
    "Vector_clock";
    "Lamport";
    "Causality";
    "Pdu";
    "Codec";
    "Cpi_log";
    "Logs";
    "Precedence";
  ]

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (Longident.flatten lid.Location.txt)
  | _ -> None

(* Does [e] syntactically mention one of the protocol modules — as a
   qualified identifier, constructor, record field or type annotation?
   Returns the first module mentioned, for the finding detail. *)
let protocol_mention ~protocol_modules e =
  let found = ref None in
  let check lid =
    if !found = None then
      List.iter
        (fun comp ->
          if !found = None && List.mem comp protocol_modules then
            found := Some comp)
        (Longident.flatten lid)
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident lid | Pexp_construct (lid, _) | Pexp_field (_, lid) ->
      check lid.Location.txt
    | _ -> ());
    super.expr it e
  in
  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr (lid, _) -> check lid.Location.txt
    | _ -> ());
    super.typ it ty
  in
  let it = { super with expr; typ } in
  it.expr it e;
  !found

(* Files that define their own top-level [compare] shadow the stdlib
   one, so a bare [compare] there is the module's own, not polymorphic. *)
let defines_toplevel_compare structure =
  List.exists
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.exists
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { Location.txt = "compare"; _ } -> true
            | _ -> false)
          vbs
      | _ -> false)
    structure

let mentions_raise e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match flatten_ident e with
    | Some ([ ("raise" | "raise_notrace") ] | [ "Printexc"; "raise_with_backtrace" ]) ->
      found := true
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let stdout_heads =
  [
    [ "print_string" ];
    [ "print_endline" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let hashtbl_mutators =
  [ "add"; "remove"; "replace"; "reset"; "clear"; "filter_map_inplace" ]

(* Inside the body of an [iter]/[fold] closure, find Hashtbl mutations
   whose table argument prints identically to the iterated table. *)
let mutations_on ~table_text body =
  let hits = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, (_, tbl) :: _) -> (
      match flatten_ident f with
      | Some [ "Hashtbl"; op ] when List.mem op hashtbl_mutators ->
        if Pprintast.string_of_expression tbl = table_text then
          hits := (e.pexp_loc, op) :: !hits
      | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.expr it body;
  List.rev !hits

let scan ~file ?(protocol_modules = default_protocol_modules) structure =
  let in_lib = String.length file >= 4 && String.sub file 0 4 = "lib/" in
  let skip_bare_compare = defines_toplevel_compare structure in
  let findings = ref [] in
  let add ~rule ~loc detail =
    findings := Finding.make ~rule ~file ~loc detail :: !findings
  in
  let catch_all_case (case : case) =
    match (case.pc_lhs.ppat_desc, case.pc_guard) with
    | (Ppat_any | Ppat_var _), None when not (mentions_raise case.pc_rhs) ->
      add ~rule:"catch-all-exn" ~loc:case.pc_lhs.ppat_loc
        "catch-all exception handler swallows all exceptions (narrow to \
         the exceptions meant, or re-raise)"
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident lid -> (
      match Longident.flatten lid.Location.txt with
      | [ "compare" ] when not skip_bare_compare ->
        add ~rule:"poly-compare" ~loc:e.pexp_loc
          "bare polymorphic compare (use the element module's compare)"
      | [ "Stdlib"; "compare" ] ->
        add ~rule:"poly-compare" ~loc:e.pexp_loc
          "Stdlib.compare is polymorphic (use the element module's compare)"
      | [ "Hashtbl"; "hash" ] ->
        add ~rule:"poly-compare" ~loc:e.pexp_loc
          "polymorphic Hashtbl.hash (hash the module's canonical form \
           instead)"
      | [ "Obj"; "magic" ] ->
        add ~rule:"obj-magic" ~loc:e.pexp_loc "use of Obj.magic"
      | head ->
        if in_lib && List.mem head stdout_heads then
          add ~rule:"stdout-in-lib" ~loc:e.pexp_loc
            (Printf.sprintf
               "direct stdout output (%s) in lib/ (route through Obs or \
                return a string)"
               (String.concat "." head)))
    | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
      match flatten_ident op with
      | Some [ (("=" | "<>") as sym) ] -> (
        let mention =
          match protocol_mention ~protocol_modules a with
          | Some m -> Some m
          | None -> protocol_mention ~protocol_modules b
        in
        match mention with
        | Some m ->
          add ~rule:"poly-compare" ~loc:e.pexp_loc
            (Printf.sprintf
               "polymorphic %s on a %s value (use %s.equal/compare)" sym m m)
        | None -> ())
      | _ -> ())
    | Pexp_try (_, cases) -> List.iter catch_all_case cases
    | Pexp_match (_, cases) ->
      List.iter
        (fun (case : case) ->
          match case.pc_lhs.ppat_desc with
          | Ppat_exception
              { ppat_desc = Ppat_any | Ppat_var _; ppat_loc; _ }
            when case.pc_guard = None && not (mentions_raise case.pc_rhs) ->
            add ~rule:"catch-all-exn" ~loc:ppat_loc
              "catch-all exception handler swallows all exceptions \
               (narrow to the exceptions meant, or re-raise)"
          | _ -> ())
        cases
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_apply (f, (_, closure) :: (_, tbl) :: _) -> (
      match flatten_ident f with
      | Some [ "Hashtbl"; ("iter" | "fold") ] ->
        let table_text = Pprintast.string_of_expression tbl in
        List.iter
          (fun (loc, op) ->
            add ~rule:"hashtbl-iter-mutation" ~loc
              (Printf.sprintf
                 "Hashtbl.%s on '%s' inside Hashtbl iteration over the \
                  same table"
                 op table_text))
          (mutations_on ~table_text closure)
      | _ -> ())
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  List.sort Finding.compare !findings
