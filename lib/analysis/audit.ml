type config = {
  root : string;
  dirs : string list;
  entries : string list;
  protocol_modules : string list;
}

let default_config ~root =
  {
    root;
    dirs = [ "lib"; "bin" ];
    entries = [ "Cluster"; "Udp_cluster"; "Registry" ];
    protocol_modules = Lint.default_protocol_modules;
  }

type report = {
  sites : Finding.t list;
  lints : Finding.t list;
  reachable : string list;
  scanned : int;
  parse_errors : (string * string) list;
}

let apply_waivers waivers findings =
  List.map
    (fun (f : Finding.t) ->
      match Waiver.find waivers ~line:f.Finding.line with
      | Some reason -> { f with Finding.waiver = Some reason }
      | None -> f)
    findings

let run config =
  let sources, parse_errors =
    Source.walk ~root:config.root ~dirs:config.dirs
  in
  let graph = Modgraph.build sources in
  let reach = Modgraph.reachable graph ~entries:config.entries in
  let sites = ref [] and lints = ref [] in
  List.iter
    (fun src ->
      match src.Source.ast with
      | Source.Signature _ -> ()
      | Source.Structure structure ->
        let module_name = Source.module_name src in
        let view =
          {
            Mutability.reachable = Hashtbl.mem reach module_name;
            has_mli = Modgraph.has_interface graph ~module_name;
            exported =
              (fun name ->
                List.mem name (Modgraph.exports graph ~module_name));
            abstract =
              (fun type_name ->
                Modgraph.abstract_in_interface graph ~module_name ~type_name);
          }
        in
        let waivers = Waiver.collect structure in
        let file = src.Source.rel in
        sites :=
          !sites
          @ apply_waivers waivers (Mutability.scan ~file ~view structure);
        lints :=
          !lints
          @ apply_waivers waivers
              (Lint.scan ~file
                 ~protocol_modules:config.protocol_modules structure))
    sources;
  {
    sites = List.sort Finding.compare !sites;
    lints = List.sort Finding.compare !lints;
    reachable =
      Hashtbl.fold (fun m () acc -> m :: acc) reach []
      |> List.sort String.compare;
    scanned = List.length sources;
    parse_errors;
  }

let unwaived report =
  List.filter
    (fun f -> not (Finding.is_waived f))
    (report.sites @ report.lints)

let classification_counts report =
  let bump acc c =
    let n = try List.assoc c acc with Not_found -> 0 in
    (c, n + 1) :: List.remove_assoc c acc
  in
  let rank = function
    | Finding.Domain_confined -> 0
    | Finding.Needs_atomic -> 1
    | Finding.Needs_lock -> 2
  in
  List.fold_left
    (fun acc (f : Finding.t) ->
      match f.Finding.classification with
      | Some c -> bump acc c
      | None -> acc)
    [] report.sites
  |> List.sort (fun (a, _) (b, _) -> Int.compare (rank a) (rank b))

let to_json report =
  Jsonx.Obj
    [
      ("scanned", Jsonx.Int report.scanned);
      ( "reachable",
        Jsonx.List (List.map (fun m -> Jsonx.String m) report.reachable) );
      ( "classification_totals",
        Jsonx.Obj
          (List.map
             (fun (c, n) -> (Finding.classification_name c, Jsonx.Int n))
             (classification_counts report)) );
      ("sites", Jsonx.List (List.map Finding.to_json report.sites));
      ("lints", Jsonx.List (List.map Finding.to_json report.lints));
      ( "parse_errors",
        Jsonx.List
          (List.map
             (fun (rel, msg) ->
               Jsonx.Obj
                 [ ("file", Jsonx.String rel); ("error", Jsonx.String msg) ])
             report.parse_errors) );
    ]

let render_text report =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "coaudit: %d files scanned, %d mutable-state sites, %d lint findings"
    report.scanned (List.length report.sites) (List.length report.lints);
  line "reachable from entry points: %s" (String.concat " " report.reachable);
  List.iter
    (fun (c, n) ->
      line "  %-15s %d" (Finding.classification_name c) n)
    (classification_counts report);
  let dump title findings =
    if findings <> [] then begin
      line "";
      line "%s:" title;
      List.iter (fun f -> line "  %s" (Format.asprintf "%a" Finding.pp f)) findings
    end
  in
  dump "mutable-state inventory" report.sites;
  dump "lint findings" report.lints;
  List.iter
    (fun (rel, msg) -> line "parse error: %s: %s" rel msg)
    report.parse_errors;
  Buffer.contents b

type check_outcome = {
  fresh : Finding.t list;
  stale : Baseline.entry list;
  checked : int;
}

let check ~baseline report =
  let findings = unwaived report in
  let d = Baseline.diff baseline findings in
  { fresh = d.Baseline.fresh; stale = d.Baseline.stale;
    checked = List.length findings }
