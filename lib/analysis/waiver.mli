(** [[\@coaudit.allow "reason"]] waiver collection.

    A waiver is an ordinary OCaml attribute (no ppx involved — the
    compiler ignores namespaced attributes it does not know). It can sit
    on an expression, a [let] binding ([[\@\@coaudit.allow]]), a type
    declaration, a record field, or a module binding; a floating
    [[\@\@\@coaudit.allow "reason"]] waives the whole file. A finding is
    waived when its position falls inside the source span of an
    attributed node; the narrowest enclosing span wins, so a targeted
    waiver's reason is reported rather than a surrounding blanket one. *)

type t

val collect : Parsetree.structure -> t

val find : t -> line:int -> string option
(** Reason of the narrowest waiver whose span contains [line]. *)

val attribute_name : string
(** ["coaudit.allow"]. *)
