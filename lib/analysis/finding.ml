type classification = Domain_confined | Needs_atomic | Needs_lock

let classification_name = function
  | Domain_confined -> "domain-confined"
  | Needs_atomic -> "needs-atomic"
  | Needs_lock -> "needs-lock"

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  detail : string;
  classification : classification option;
  waiver : string option;
}

let make ?classification ?waiver ~rule ~file ~(loc : Location.t) detail =
  let p = loc.Location.loc_start in
  {
    rule;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    detail;
    classification;
    waiver;
  }

let key t = t.file ^ "|" ^ t.rule ^ "|" ^ t.detail
let is_waived t = t.waiver <> None

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.detail;
  (match t.classification with
  | Some c -> Format.fprintf ppf " -> %s" (classification_name c)
  | None -> ());
  match t.waiver with
  | Some reason -> Format.fprintf ppf " (waived: %s)" reason
  | None -> ()

let to_json t =
  let base =
    [
      ("rule", Jsonx.String t.rule);
      ("file", Jsonx.String t.file);
      ("line", Jsonx.Int t.line);
      ("col", Jsonx.Int t.col);
      ("detail", Jsonx.String t.detail);
    ]
  in
  let cls =
    match t.classification with
    | Some c -> [ ("classification", Jsonx.String (classification_name c)) ]
    | None -> []
  in
  let waiver =
    match t.waiver with
    | Some reason -> [ ("waiver", Jsonx.String reason) ]
    | None -> []
  in
  Jsonx.Obj (base @ cls @ waiver)
