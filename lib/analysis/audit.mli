(** The full audit: walk the tree, build the module graph, run the
    mutable-state inventory and the protocol lints, apply waivers, and
    render or gate the result. This is what [bin/coaudit] drives. *)

type config = {
  root : string;  (** Repo root; paths in findings are relative to it. *)
  dirs : string list;  (** Default [["lib"; "bin"]]. *)
  entries : string list;
      (** Cross-domain entry-point module basenames; default
          [["Cluster"; "Udp_cluster"; "Registry"]] — the UDP/sim cluster
          drivers and the metrics registry shared with scrapers. *)
  protocol_modules : string list;  (** See {!Lint.scan}. *)
}

val default_config : root:string -> config

type report = {
  sites : Finding.t list;  (** Mutable-state inventory, source order. *)
  lints : Finding.t list;
  reachable : string list;  (** Modules reachable from [entries], sorted. *)
  scanned : int;  (** Files parsed. *)
  parse_errors : (string * string) list;
}

val run : config -> report

val unwaived : report -> Finding.t list
(** Sites and lints without a [[\@coaudit.allow]] waiver — the set the
    baseline diff operates on. *)

val classification_counts : report -> (Finding.classification * int) list

(** {2 Rendering} *)

val to_json : report -> Jsonx.t
val render_text : report -> string

type check_outcome = {
  fresh : Finding.t list;
  stale : Baseline.entry list;
  checked : int;  (** Unwaived findings diffed against the baseline. *)
}

val check : baseline:Baseline.t -> report -> check_outcome
(** Empty [fresh] means the gate passes. *)
