(** Mutable-state inventory: every site in a compilation unit that
    creates or declares mutable state, classified for the multicore
    refactor.

    Site kinds: [ref] cells, [mutable] record fields, [Hashtbl.create],
    [Buffer.create], [Bytes] allocation, [Atomic.make], and module-level
    [let]s whose right-hand side is an effectful application (a
    module-level [let () = ...] in [lib/] counts too — initialization
    effects are hidden global state).

    Classification lattice (conservative, syntactic):

    - a site in a module {e not} reachable from the entry points is
      {e domain-confined} — no cross-domain caller can touch it;
    - in a reachable module, {e module-level} sites and {e instance}
      sites (creator stored in a record the module hands out — detected
      as "creator is a record-field value, or its [let]-binder appears as
      one somewhere in the file") are {e needs-atomic} when single-word
      (scalar-initialized [ref], [Atomic.make], immediate [mutable]
      field) and {e needs-lock} otherwise;
    - remaining function-local sites are {e domain-confined}
      (per-invocation scratch).

    The file-granularity binder check over-approximates — a binder name
    reused for an unrelated record field still promotes the site to
    instance state. Over-approximation is the audit's stated bias. *)

type module_view = {
  reachable : bool;
      (** Module transitively referenced from a cross-domain entry point. *)
  has_mli : bool;
  exported : string -> bool;  (** [val] name present in the [.mli]. *)
  abstract : string -> bool;  (** Type abstract in the [.mli]. *)
}

val confined_view : module_view
(** [reachable = false], nothing exported — fixture-test convenience. *)

val shared_view : module_view
(** [reachable = true], no interface (everything escapes). *)

val scan :
  file:string -> view:module_view -> Parsetree.structure -> Finding.t list
(** Findings all carry [rule = "mutable-site"] and a classification,
    sorted in source order. Waivers are applied by the caller. *)
