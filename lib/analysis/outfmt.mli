(** The shared [--format (text|json)] CLI flag, so every repo tool
    ([coaudit], [colint]) is scriptable the same way: text for humans,
    one JSON document on stdout for pipelines, non-zero exit on
    findings either way. *)

type t = Text | Json

val term : t Cmdliner.Term.t
(** [--format (text|json)], default [Text]. *)

val print : t -> text:(unit -> string) -> json:(unit -> Jsonx.t) -> unit
(** Render and print the chosen representation (with trailing newline);
    the unchosen thunk is not forced. *)
