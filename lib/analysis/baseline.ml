type entry = { key : string; count : int; why : string }
type t = { version : int; entries : entry list }

let empty = { version = 1; entries = [] }

let to_json t =
  Jsonx.Obj
    [
      ("version", Jsonx.Int t.version);
      ( "entries",
        Jsonx.List
          (List.map
             (fun e ->
               Jsonx.Obj
                 [
                   ("key", Jsonx.String e.key);
                   ("count", Jsonx.Int e.count);
                   ("why", Jsonx.String e.why);
                 ])
             t.entries) );
    ]

let of_json json =
  let version =
    Option.bind (Jsonx.member "version" json) Jsonx.int_value
    |> Option.value ~default:0
  in
  if version <> 1 then Error (Printf.sprintf "unsupported baseline version %d" version)
  else
    let entries =
      Jsonx.member "entries" json |> Option.value ~default:(Jsonx.List [])
      |> Jsonx.to_list
      |> List.filter_map (fun e ->
             match
               ( Option.bind (Jsonx.member "key" e) Jsonx.string_value,
                 Option.bind (Jsonx.member "count" e) Jsonx.int_value )
             with
             | Some key, Some count ->
               let why =
                 Option.bind (Jsonx.member "why" e) Jsonx.string_value
                 |> Option.value ~default:""
               in
               Some { key; count; why }
             | _ -> None)
    in
    Ok { version; entries }

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> Result.bind (Jsonx.of_string text) of_json

let save path t =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Jsonx.to_string (to_json t));
      Out_channel.output_string oc "\n")

let counts_by_key findings =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let key = Finding.key f in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    findings;
  counts

let of_findings ?(old = empty) findings =
  let old_why = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace old_why e.key e.why) old.entries;
  let counts = counts_by_key findings in
  let entries =
    Hashtbl.fold
      (fun key count acc ->
        let why =
          Option.value ~default:"" (Hashtbl.find_opt old_why key)
        in
        { key; count; why } :: acc)
      counts []
    |> List.sort (fun a b -> String.compare a.key b.key)
  in
  { version = 1; entries }

type diff = { fresh : Finding.t list; stale : entry list }

let diff baseline findings =
  let allowed = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace allowed e.key e.count) baseline.entries;
  let counts = counts_by_key findings in
  (* Findings in source order; the first [baseline count] occurrences of
     each key are accepted, the remainder are fresh. *)
  let seen = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun f ->
        let key = Finding.key f in
        let prior = Option.value ~default:0 (Hashtbl.find_opt seen key) in
        Hashtbl.replace seen key (prior + 1);
        prior >= Option.value ~default:0 (Hashtbl.find_opt allowed key))
      (List.sort Finding.compare findings)
  in
  let stale =
    List.filter
      (fun e ->
        Option.value ~default:0 (Hashtbl.find_opt counts e.key) < e.count)
      baseline.entries
  in
  { fresh; stale }
