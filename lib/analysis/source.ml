type ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type t = { rel : string; ast : ast }

let module_name t =
  Filename.basename t.rel |> Filename.remove_extension
  |> String.capitalize_ascii

let is_ml t = match t.ast with Structure _ -> true | Signature _ -> false

let parse_string ~filename text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf filename;
  match
    if Filename.check_suffix filename ".mli" then
      Signature (Parse.interface lexbuf)
    else Structure (Parse.implementation lexbuf)
  with
  | ast -> Ok { rel = filename; ast }
  | exception (exn
      [@coaudit.allow
        "the parser raises several exception families (Syntaxerr.Error, \
         Lexer.Error, ...); any of them means unparseable input, which \
         the audit reports rather than crashes on"]) ->
    Error
      (Printf.sprintf "%s: parse error: %s" filename (Printexc.to_string exn))

let load ~root ~rel =
  let path = Filename.concat root rel in
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_string ~filename:rel text
  | exception Sys_error msg -> Error msg

let rec files_under ~root rel_dir =
  let abs = Filename.concat root rel_dir in
  match Sys.readdir abs with
  | exception Sys_error _ -> []
  | names ->
    Array.sort String.compare names;
    Array.fold_left
      (fun acc name ->
        if String.length name = 0 || name.[0] = '.' || name = "_build" then
          acc
        else
          let rel = rel_dir ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel) then
            acc @ files_under ~root rel
          else if
            Filename.check_suffix name ".ml"
            || Filename.check_suffix name ".mli"
          then acc @ [ rel ]
          else acc)
      [] names

let walk ~root ~dirs =
  let rels = List.concat_map (files_under ~root) dirs in
  List.fold_left
    (fun (oks, errs) rel ->
      match load ~root ~rel with
      | Ok src -> (oks @ [ src ], errs)
      | Error msg -> (oks, errs @ [ (rel, msg) ]))
    ([], []) rels
