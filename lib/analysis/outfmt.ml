type t = Text | Json

let format_conv =
  Cmdliner.Arg.enum [ ("text", Text); ("json", Json) ]
[@@coaudit.allow "static CLI flag spec, built once at module load"]

let term =
  Cmdliner.Arg.(
    value & opt format_conv Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:"Output format: $(b,text) for humans, $(b,json) for scripts.")

let print t ~text ~json =
  match t with
  | Text -> print_string (text ())
  | Json ->
    print_string (Jsonx.to_string (json ()));
    print_newline ()
[@@coaudit.allow
  "the shared --format printer: stdout is the CLI contract for both \
   colint and coaudit"]
