(** Source discovery and parsing. Files are parsed with the compiler's
    own parser ([compiler-libs]), so the audit sees exactly the parsetree
    the build sees — no regexp scraping, no ppx. *)

type ast =
  | Structure of Parsetree.structure  (** [.ml] *)
  | Signature of Parsetree.signature  (** [.mli] *)

type t = {
  rel : string;  (** Path relative to the audit root, '/'-separated. *)
  ast : ast;
}

val module_name : t -> string
(** Module basename: [lib/clock/matrix_clock.ml] -> ["Matrix_clock"]. *)

val is_ml : t -> bool

val parse_string : filename:string -> string -> (t, string) result
(** Parse source text as the contents of [filename] ([.mli] suffix
    selects the interface grammar). Used by the fixture tests. *)

val load : root:string -> rel:string -> (t, string) result

val walk :
  root:string -> dirs:string list -> t list * (string * string) list
(** All [.ml]/[.mli] files under [root]/[dirs], recursively, in sorted
    order, skipping dot-directories and [_build]. Returns parsed sources
    and [(rel, message)] parse failures. *)
