(** Minimal JSON tree: just enough for the audit baseline and [--format
    json] output, so the analysis library needs no dependency beyond the
    compiler's own libraries. Ints round-trip exactly; floats are emitted
    with [%.17g]. Strings are escaped per RFC 8259 (the parser accepts
    [\uXXXX] for the ASCII range and rejects surrogates — all strings we
    produce are plain OCaml source excerpts). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default true) pretty-prints objects and arrays one entry
    per line, two-space indent — the committed-baseline format, chosen to
    diff well under git. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. The
    error string carries a byte offset. *)

(** {2 Accessors} — all total; [None]/[[]] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list
val string_value : t -> string option
val int_value : t -> int option
