type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Emission *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(indent = true) json =
  let b = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string b (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then (
            Buffer.add_char b ',';
            nl ());
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then (
            Buffer.add_char b ',';
            nl ());
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent then ": " else ":");
          emit (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  emit 0 json;
  Buffer.contents b

(* Parsing: plain recursive descent over the string. *)

exception Parse_error of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub text !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some code when code < 0x80 -> Char.chr code
    | Some _ -> fail "\\u escape beyond ASCII is unsupported"
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then (
        (if !pos >= n then fail "unterminated escape";
         let e = text.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' -> Buffer.add_char b (parse_hex4 ())
         | _ -> fail "bad escape");
        loop ())
      else (
        Buffer.add_char b c;
        loop ())
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List items -> items | _ -> []
let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None
