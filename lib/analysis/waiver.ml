open Parsetree
open Ast_iterator

let attribute_name = "coaudit.allow"

(* start line, end line, reason — inclusive span of the attributed node. *)
type t = { spans : (int * int * string) list }

let reason_of_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    s
  | _ -> "waived"

let span_of_loc (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_end.Lexing.pos_lnum)

let collect structure =
  let spans = ref [] in
  let note ~(loc : Location.t) attrs =
    List.iter
      (fun attr ->
        if attr.attr_name.Location.txt = attribute_name then begin
          let lo, hi = span_of_loc loc in
          spans := (lo, hi, reason_of_payload attr.attr_payload) :: !spans
        end)
      attrs
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    note ~loc:e.pexp_loc e.pexp_attributes;
    super.expr it e
  in
  let value_binding it vb =
    note ~loc:vb.pvb_loc vb.pvb_attributes;
    super.value_binding it vb
  in
  let type_declaration it td =
    note ~loc:td.ptype_loc td.ptype_attributes;
    super.type_declaration it td
  in
  let label_declaration (ld : label_declaration) =
    note ~loc:ld.pld_loc ld.pld_attributes;
    note ~loc:ld.pld_loc ld.pld_type.ptyp_attributes
  in
  let type_declaration it td =
    (match td.ptype_kind with
    | Ptype_record labels -> List.iter label_declaration labels
    | _ -> ());
    type_declaration it td
  in
  let module_binding it mb =
    note ~loc:mb.pmb_loc mb.pmb_attributes;
    super.module_binding it mb
  in
  let pat it p =
    note ~loc:p.ppat_loc p.ppat_attributes;
    super.pat it p
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_attribute attr ->
      if attr.attr_name.Location.txt = attribute_name then
        spans := (1, max_int, reason_of_payload attr.attr_payload) :: !spans
    | _ -> ());
    super.structure_item it si
  in
  let it =
    {
      super with
      expr;
      value_binding;
      type_declaration;
      module_binding;
      pat;
      structure_item;
    }
  in
  it.structure it structure;
  { spans = !spans }

let find t ~line =
  List.fold_left
    (fun best (lo, hi, reason) ->
      if line < lo || line > hi then best
      else
        match best with
        | Some (blo, bhi, _) when bhi - blo <= hi - lo -> best
        | _ -> Some (lo, hi, reason))
    None t.spans
  |> Option.map (fun (_, _, reason) -> reason)
