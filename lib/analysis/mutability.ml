open Parsetree
open Ast_iterator

type module_view = {
  reachable : bool;
  has_mli : bool;
  exported : string -> bool;
  abstract : string -> bool;
}

let confined_view =
  {
    reachable = false;
    has_mli = true;
    exported = (fun _ -> false);
    abstract = (fun _ -> false);
  }

let shared_view =
  {
    reachable = true;
    has_mli = false;
    exported = (fun _ -> true);
    abstract = (fun _ -> false);
  }

let rule = "mutable-site"

type kind =
  | Ref of bool  (** scalar (single-word) initializer *)
  | Hashtbl_create
  | Buffer_create
  | Bytes_alloc
  | Atomic_make

let kind_name = function
  | Ref _ -> "ref"
  | Hashtbl_create -> "Hashtbl.create"
  | Buffer_create -> "Buffer.create"
  | Bytes_alloc -> "Bytes alloc"
  | Atomic_make -> "Atomic.make"

let single_word = function Ref scalar -> scalar | Atomic_make -> true | _ -> false

let head_ident e =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (Longident.flatten lid.Location.txt)
  | _ -> None

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> peel inner
  | _ -> e

(* Single-word initializer: the resulting ref can become an [Atomic.t]
   without a representation change. *)
let scalar_init e =
  match (peel e).pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct ({ Location.txt = Longident.Lident name; _ }, None) ->
    List.mem name [ "true"; "false"; "None"; "()"; "[]" ]
  | _ -> false

let creator_of_apply f args =
  match head_ident f with
  | Some [ "ref" ] -> (
    match args with
    | (_, init) :: _ -> Some (Ref (scalar_init init))
    | [] -> None)
  | Some [ "Hashtbl"; "create" ] -> Some Hashtbl_create
  | Some [ "Buffer"; "create" ] -> Some Buffer_create
  | Some [ "Bytes"; ("create" | "make" | "init" | "of_string") ] ->
    Some Bytes_alloc
  | Some [ "Atomic"; "make" ] -> Some Atomic_make
  | _ -> None

(* Heads whose module-level application we accept as pure. Operators
   (non-letter heads) are always accepted: arithmetic and concatenation
   at module level build constants. *)
let pure_head = function
  | [ "Printf"; "sprintf" ]
  | [ "Format"; "asprintf" ]
  | [ "String"; _ ]
  | [ "Filename"; _ ]
  | [ "List"; "init" ] ->
    true
  | [ name ] when String.length name > 0 -> (
    match name.[0] with 'a' .. 'z' | '_' -> false | _ -> true)
  | _ -> false

type scope = Toplevel | Instance | Local

let scope_name = function
  | Toplevel -> "module-level"
  | Instance -> "instance"
  | Local -> "local"

let classify ~(view : module_view) ~scope ~single_word =
  if not view.reachable then Finding.Domain_confined
  else
    match scope with
    | Local -> Finding.Domain_confined
    | Toplevel | Instance ->
      if single_word then Finding.Needs_atomic else Finding.Needs_lock

(* Names that appear directly as record-field values anywhere in the
   file: a creator let-bound to such a name is treated as instance
   state (e.g. [let tbl = Hashtbl.create 8 in { tbl; ... }]). *)
let record_value_names structure =
  let names = Hashtbl.create 16 in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_record (fields, _) ->
      List.iter
        (fun (_, v) ->
          match (peel v).pexp_desc with
          | Pexp_ident { Location.txt = Longident.Lident name; _ } ->
            Hashtbl.replace names name ()
          | _ -> ())
        fields
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it structure;
  names

let immediate_core_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ Location.txt = lid; _ }, []) -> (
    match Longident.flatten lid with
    | [ ("int" | "bool" | "char") ] -> true
    | _ -> false)
  | _ -> false

let scan ~file ~view structure =
  let in_lib = String.length file >= 4 && String.sub file 0 4 = "lib/" in
  let findings = ref [] in
  let add ?classification ~loc detail =
    findings := Finding.make ?classification ~rule ~file ~loc detail :: !findings
  in
  let record_names = record_value_names structure in
  let fun_depth = ref 0 in
  let binder = ref None in
  let in_record_field = ref false in
  let creator_site ~loc kind =
    let scope =
      if !fun_depth = 0 then Toplevel
      else if !in_record_field then Instance
      else
        match !binder with
        | Some name when Hashtbl.mem record_names name -> Instance
        | _ -> Local
    in
    let name = match !binder with Some n -> n | None -> "_" in
    let encap =
      if scope = Toplevel && view.has_mli && not (view.exported name) then
        " (not exported)"
      else ""
    in
    let classification =
      classify ~view ~scope ~single_word:(single_word kind)
    in
    add ~classification ~loc
      (Printf.sprintf "%s '%s' (%s%s)" (kind_name kind) name
         (scope_name scope) encap)
  in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match creator_of_apply f args with
      | Some kind -> creator_site ~loc:e.pexp_loc kind
      | None -> ())
    | _ -> ());
    in_record_field := false;
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
      incr fun_depth;
      super.expr it e;
      decr fun_depth
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          let saved = !binder in
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { Location.txt = name; _ } -> binder := Some name
          | _ -> ());
          it.pat it vb.pvb_pat;
          it.expr it vb.pvb_expr;
          binder := saved)
        vbs;
      it.expr it body
    | Pexp_record (fields, base) ->
      Option.iter (it.expr it) base;
      List.iter
        (fun (_, v) ->
          in_record_field := true;
          it.expr it v;
          in_record_field := false)
        fields
    | _ -> super.expr it e
  in
  let handle_toplevel_binding vb =
    let saved = !binder in
    let name =
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { Location.txt = name; _ } -> Some name
      | _ -> None
    in
    binder := name;
    let rhs = peel vb.pvb_expr in
    (* Module-level effectful right-hand sides (beyond the creators,
       which are reported on their own): [let () = ...] initialization
       effects in lib/, and applications of non-whitelisted functions. *)
    (match (vb.pvb_pat.ppat_desc, rhs.pexp_desc) with
    | Ppat_construct ({ Location.txt = Longident.Lident "()"; _ }, None), _
      when in_lib ->
      add
        ~classification:
          (if view.reachable then Finding.Needs_lock
           else Finding.Domain_confined)
        ~loc:vb.pvb_loc "module-level 'let ()' initialization effect"
    | Ppat_var { Location.txt = name; _ }, Pexp_apply (f, args) -> (
      match (creator_of_apply f args, head_ident f) with
      | Some _, _ -> () (* the creator site itself is the finding *)
      | None, Some head when not (pure_head head) ->
        add
          ~classification:
            (if view.reachable then Finding.Needs_lock
             else Finding.Domain_confined)
          ~loc:vb.pvb_loc
          (Printf.sprintf "module-level effectful binding '%s' (calls %s)"
             name
             (String.concat "." head))
      | _ -> ())
    | _ -> ());
    binder := saved;
    name
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) when !fun_depth = 0 ->
      List.iter
        (fun vb ->
          let name = handle_toplevel_binding vb in
          let saved = !binder in
          binder := name;
          it.pat it vb.pvb_pat;
          it.expr it vb.pvb_expr;
          binder := saved)
        vbs
    | Pstr_type (_, decls) ->
      List.iter
        (fun decl ->
          let type_name = decl.ptype_name.Location.txt in
          match decl.ptype_kind with
          | Ptype_record labels ->
            List.iter
              (fun ld ->
                match ld.pld_mutable with
                | Immutable -> ()
                | Mutable ->
                  let immediate = immediate_core_type ld.pld_type in
                  let encap =
                    if view.has_mli && view.abstract type_name then
                      " (encapsulated)"
                    else ""
                  in
                  let classification =
                    if not view.reachable then Finding.Domain_confined
                    else if immediate then Finding.Needs_atomic
                    else Finding.Needs_lock
                  in
                  add ~classification ~loc:ld.pld_loc
                    (Printf.sprintf "mutable field '%s.%s'%s" type_name
                       ld.pld_name.Location.txt encap))
              labels
          | _ -> ())
        decls;
      super.structure_item it si
    | _ -> super.structure_item it si
  in
  let it = { super with expr; structure_item } in
  it.structure it structure;
  List.sort Finding.compare !findings
