(** Conservative module-reference graph over the scanned sources, used to
    decide which modules are reachable from the cross-domain entry points
    ([Cluster], [Udp_cluster], [Obs.Registry] by default).

    Nodes are module basenames ([matrix_clock.ml] -> [Matrix_clock]).
    There is an edge [A -> B] whenever any longident anywhere in [A]'s
    implementation mentions [B] as a path component — this resolves
    through library-wrapper prefixes ([Repro_clock.Matrix_clock]) and
    through local aliases ([module M = Repro_clock.Matrix_clock]) for
    free, at the cost of over-approximation (a mention in dead code still
    creates an edge). Over-approximation errs exactly the way a
    domain-safety audit should: toward "shared". *)

type t

val build : Source.t list -> t

val known : t -> string list
(** All module basenames in the scan, sorted. *)

val reachable : t -> entries:string list -> (string, unit) Hashtbl.t
(** Transitive closure of the edge relation from [entries] (module
    basenames; unknown names are ignored). Includes the entry points
    themselves. *)

val exports : t -> module_name:string -> string list
(** [val] names declared in the module's [.mli]; all bindings are
    considered exported when the module has no interface file. *)

val has_interface : t -> module_name:string -> bool

val abstract_in_interface : t -> module_name:string -> type_name:string -> bool
(** The [.mli] declares [type_name] abstract (no manifest, no visible
    representation) — mutation can only happen through the module's own
    functions. *)
