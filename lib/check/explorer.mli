(** Exhaustive small-scope model checking of the CO entity state machine.

    The explorer drives [n] real {!Repro_core.Entity.t} instances (the
    production code, not a model of it) through {e every} interleaving of a
    finite event alphabet:

    - [Submit] — the next scripted application request (script order fixed,
      so later submissions can causally depend on earlier deliveries);
    - [Deliver] — hand one in-flight transmission to its destination;
    - [Drop] — lose one in-flight transmission (bounded by a drop budget;
      an entity's own loopback copy is undroppable, matching the MC
      medium);
    - [Fire] — run an entity's oldest pending timer;
    - [Cut] — commit the configured membership change (one [Join] or
      [Leave] per run). Enabled only once the epoch-0 script is spent and
      the members have reconciled (equal REQ vectors, all protocol work
      drained) — the view-change barrier's commit precondition. The cut
      closes the epoch, rebuilds the next view's entities from remapped
      {!Repro_core.Entity.bootstrap_checkpoint} blobs (the joiner from the
      sponsor's bytes, as in the co-checkpoint-v1 state transfer) and
      abandons the old timers, but deliberately leaves stale old-epoch
      copies in flight: delivering one after the cut exercises the
      entity-level cid guard, watched by the monitor's
      [no-cross-epoch-delivery] invariant.

    Time is frozen at 0: interleaving, not timing, is the state space, and
    timers become explicit events. After every transition the full
    {!Invariants} catalog runs on the stepped entity and the
    {!Invariants.Monitor} checks delivery order and monotonicity; the first
    violation aborts the search with its complete event schedule — a
    replayable counterexample.

    States are deduplicated by {!Repro_core.Entity.signature} digests
    (plus in-flight multisets and timer queues), and an optional sleep-set
    partial-order reduction prunes interleavings of provably independent
    (commuting) events. Exploration is replay-based: entities are mutable,
    so each DFS node re-executes its event prefix from a fresh system.

    Scope: [n] ∈ {2, 3} and 2–4 broadcasts explore in seconds to minutes;
    the [max_states]/[max_depth] budgets bound the worst case and set
    [truncated] when hit, so "0 violations" is only a proof of the
    small-scope theorem when [truncated = false]. *)

(** The membership change a run may commit (at most one per run). [Leave l]
    removes epoch-0 rank [l] (higher ranks shift down); [Join] adds a new
    member at the next view's last rank, bootstrapped by state transfer. *)
type churn = Join | Leave of int

type config = {
  n : int;  (** Epoch-0 cluster size (2 or 3 are practical). *)
  script : (int * string) list;
      (** [(src, payload)] submissions, issued in list order. *)
  churn : churn option;  (** Membership change to model-check, if any. *)
  post_script : (int * string) list;
      (** Submissions issued after the [Cut], with sources in {e new-view}
          ranks — new-epoch traffic interleaving with stale stragglers.
          Requires [churn]. *)
  max_drops : int;  (** Total loss budget across the schedule. *)
  max_fires : int;
      (** Total timer-fire budget across the schedule. Fires must be
          bounded like drops: the heartbeat re-arms itself and each fire
          can emit fresh traffic, so unbounded fairness regenerates the
          event alphabet forever. *)
  max_states : int;  (** Distinct-state budget; exceeding sets [truncated]. *)
  max_depth : int;  (** Schedule-length budget. *)
  por : bool;  (** Enable the sleep-set reduction. *)
  protocol : Repro_core.Config.t;
      (** Entity configuration. Must not use [Deferred] confirmation (its
          spacing test never passes under the frozen clock);
          {!default_config} uses [Immediate]. Set [fault] here to verify the
          checker catches seeded bugs. *)
  on_system : Repro_core.Entity.t array -> unit;
      (** Called on each freshly built entity array, after observers are
          attached, before any event replays. The explorer rebuilds the
          system once per explored path, so the hook fires once per replay —
          use it to attach external monitors (e.g. telemetry probes) that
          must see every path from its first event. [ignore] by default. *)
}

val default_config : n:int -> config
(** One broadcast per entity, no churn, no drops, no timer fires, POR on,
    [Immediate] confirmation, a tight window ([W = 2]) and a 200k-state
    budget. Budget drops and fires explicitly per run — each fire roughly
    multiplies the state count by ten. *)

type event =
  | Submit
  | Deliver of { dst : int; pdu : string }  (** [pdu] is the wire encoding. *)
  | Drop of { dst : int; pdu : string }
  | Fire of { entity : int }
  | Cut  (** Commit the configured membership change. *)

type violation_report = {
  violation : Invariants.violation;
  schedule : string list;
      (** Human-readable event prefix reproducing the violation. *)
}

type outcome = {
  states : int;  (** Distinct states explored. *)
  transitions : int;
  max_depth_seen : int;
  truncated : bool;  (** A budget was exhausted; coverage is partial. *)
  violation : violation_report option;  (** First violation, if any. *)
}

val run : config -> outcome
(** Explore exhaustively (up to the budgets), stopping at the first
    violation. @raise Invalid_argument on a malformed config. *)

val pp_outcome : Format.formatter -> outcome -> unit
