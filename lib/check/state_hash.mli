(** Canonical hashing of composite model-checker states.

    A state is presented as an ordered list of opaque component strings
    (entity signatures, in-flight PDU encodings, timer labels, counters);
    the digest length-prefixes every part before hashing, so distinct part
    lists never produce the same pre-image — two states collide only by MD5
    collision, not by concatenation ambiguity. *)

val digest : string list -> string
(** Hex digest, order-sensitive, injective in the part list modulo hash
    collisions. *)
