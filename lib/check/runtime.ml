open Repro_core

let fail v = raise (Entity.Protocol_invariant (Invariants.to_string v))

let install ?monitor e =
  (match monitor with
  | Some m ->
    Entity.add_observer e (function
      | Entity.Acknowledged d -> (
        match Invariants.Monitor.note_delivery m ~entity:(Entity.id e) d with
        | [] -> ()
        | v :: _ -> fail v)
      | Entity.Accepted _ | Entity.Preacknowledged _ | Entity.Gap_detected _
      | Entity.Ret_answered _ ->
        ())
  | None -> ());
  Entity.set_step_checker e (fun () ->
      (match Invariants.check_entity e with [] -> () | v :: _ -> fail v);
      match monitor with
      | Some m -> (
        match Invariants.Monitor.note_step m e with
        | [] -> ()
        | v :: _ -> fail v)
      | None -> ())

let install_cluster cluster =
  let n = Cluster.size cluster in
  let monitor = Invariants.Monitor.create ~n in
  for id = 0 to n - 1 do
    install ~monitor (Cluster.entity cluster id)
  done
