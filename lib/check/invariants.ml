open Repro_core
module Pdu = Repro_pdu.Pdu
module Matrix_clock = Repro_clock.Matrix_clock

type violation = { entity : int; invariant : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "entity %d: %s: %s" v.entity v.invariant v.detail

let to_string v = Format.asprintf "%a" pp_violation v

(* Each invariant below is a consequence of the protocol's transition rules
   (soundness arguments in docs/checking.md): violations mean a bug in the
   implementation (or an injected {!Config.fault}), never a legal state. *)
let check_entity e =
  let id = Entity.id e in
  let n = Entity.cluster_size e in
  let cfg = Entity.config e in
  let out = ref [] in
  let add invariant fmt =
    Printf.ksprintf
      (fun detail -> out := { entity = id; invariant; detail } :: !out)
      fmt
  in
  let al = Entity.al_matrix e in
  let pal = Entity.pal_matrix e in
  (* Every row of PAL is raised from a PDU that raised the same AL row first,
     and rows only grow — so PAL never overtakes AL. *)
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      let p = Matrix_clock.get pal ~row ~col in
      let a = Matrix_clock.get al ~row ~col in
      if p > a then
        add "pal-le-al" "PAL[%d][%d]=%d exceeds AL[%d][%d]=%d" row col p row
          col a
    done
  done;
  for k = 0 to n - 1 do
    if Entity.minpal e k > Entity.minal e k then
      add "minpal-le-minal" "minPAL_%d=%d exceeds minAL_%d=%d" k
        (Entity.minpal e k) k (Entity.minal e k)
  done;
  (* Transmission is gated by [seq < minAL_peers + W_eff + slack] with
     W_eff <= W and slack <= 1, and minAL_peers is monotone. *)
  if Entity.seq_next e > Entity.minal_peers e + cfg.Config.window + 1 then
    add "window-bound" "seq_next=%d exceeds minAL_peers=%d + W=%d + 1"
      (Entity.seq_next e) (Entity.minal_peers e) cfg.Config.window;
  let req = Entity.req e in
  if req.(id) > Entity.seq_next e then
    add "req-self" "REQ_self=%d exceeds next own seq %d" req.(id)
      (Entity.seq_next e);
  for j = 0 to n - 1 do
    (* The ACC condition admits exactly [SEQ = REQ_j], so RRL_j is the
       contiguous run ending at REQ_j - 1. *)
    let rrl = Entity.rrl_list e ~src:j in
    let expect = ref (req.(j) - List.length rrl) in
    List.iter
      (fun (p : Pdu.data) ->
        if p.seq <> !expect then
          add "rrl-contiguous" "RRL_%d holds seq %d where %d was expected" j
            p.seq !expect;
        incr expect)
      rrl;
    List.iter
      (fun s ->
        if s <= req.(j) then
          add "pending-above-req"
            "out-of-sequence buffer holds seq %d from %d at or below REQ=%d" s
            j req.(j))
      (Entity.pending_seqs e ~src:j)
  done;
  (* PACK moves a PDU into PRL only under [SEQ < minAL_src], and minAL only
     grows. *)
  List.iter
    (fun (p : Pdu.data) ->
      if p.seq >= Entity.minal e p.src then
        add "prl-below-minal" "PRL holds (%d,%d) but minAL_%d=%d" p.src p.seq
          p.src (Entity.minal e p.src))
    (Entity.prl_list e);
  (match cfg.Config.causality_mode with
  | Config.Transitive ->
    (* CPI keeps PRL a linear extension of causality-precedence. Only
       guaranteed in Transitive mode: the paper's Direct test legitimately
       misorders relayed chains (DESIGN.md §7). *)
    if
      not
        (Precedence.is_causality_preserved
           ~precedes:(Entity.causally_precedes e)
           (Entity.prl_list e))
    then
      add "prl-linear-extension"
        "PRL is not a linear extension of causality-precedence"
  | Config.Direct -> ());
  List.rev !out

module Monitor = struct
  type slot = {
    mutable delivered_rev : Pdu.data list;
    delivered : (int * (int * int), unit) Hashtbl.t; (* (cid, (src, seq)) *)
    mutable seen_step : bool;
    mutable expect_cid : int option;
    mutable last_seq : int;
    mutable last_req : int array;
    mutable last_al : Matrix_clock.t;
    mutable last_pal : Matrix_clock.t;
  }

  type t = { n : int; slots : slot array }

  let create ~n =
    {
      n;
      slots =
        Array.init n (fun _ ->
            {
              delivered_rev = [];
              delivered = Hashtbl.create 64;
              seen_step = false;
              expect_cid = None;
              last_seq = 1;
              last_req = Array.make n 1;
              last_al = Matrix_clock.create ~n ~init:1;
              last_pal = Matrix_clock.create ~n ~init:1;
            });
    }

  let note_delivery t ~entity (d : Pdu.data) =
    let s = t.slots.(entity) in
    let out = ref [] in
    let add invariant fmt =
      Printf.ksprintf
        (fun detail -> out := { entity; invariant; detail } :: !out)
        fmt
    in
    (* The entity-level cid guard is the membership layer's epoch fence:
       a PDU stamped with a closed epoch's cid must never reach the
       application once the view change committed. [expect_cid] tracks the
       delivering entity's configured cid (refreshed by {!note_step}), so
       any stale-epoch straggler that slips past the guard is flagged. *)
    (match s.expect_cid with
    | Some c when d.cid <> c ->
      add "no-cross-epoch-delivery"
        "(%d,%d) carries cid %d but the delivering entity expects %d" d.src
        d.seq d.cid c
    | _ -> ());
    let key = (d.cid, Pdu.key d) in
    if Hashtbl.mem s.delivered key then
      add "deliver-exactly-once" "(%d,%d) acknowledged twice" d.src d.seq;
    Hashtbl.replace s.delivered key ();
    (* The Theorem 4.1 direct test only claims precedence when the later
       sender had provably accepted the earlier PDU, so it never flags a
       concurrent pair: any hit is a real causal-order inversion. *)
    List.iter
      (fun (earlier : Pdu.data) ->
        if Precedence.precedes d earlier then
          add "causal-delivery-order"
            "(%d,%d) delivered after (%d,%d) despite preceding it" d.src d.seq
            earlier.src earlier.seq)
      s.delivered_rev;
    s.delivered_rev <- d :: s.delivered_rev;
    List.rev !out

  let note_step t e =
    let entity = Entity.id e in
    let n = Entity.cluster_size e in
    let s = t.slots.(entity) in
    let out = ref [] in
    let add invariant fmt =
      Printf.ksprintf
        (fun detail -> out := { entity; invariant; detail } :: !out)
        fmt
    in
    let seq = Entity.seq_next e in
    let req = Entity.req e in
    let al = Entity.al_matrix e in
    let pal = Entity.pal_matrix e in
    (* Snapshots are comparable only within one view: a membership change
       resizes REQ and the matrices (and {!note_view_change} resets the
       baseline), so dimensions always match here — the guard is belt and
       braces for a caller that swapped entities without announcing it. *)
    if s.seen_step && Array.length req = Array.length s.last_req then begin
      if seq < s.last_seq then
        add "seq-monotone" "seq_next went from %d to %d" s.last_seq seq;
      Array.iteri
        (fun j v ->
          if v < s.last_req.(j) then
            add "req-monotone" "REQ_%d went from %d to %d" j s.last_req.(j) v)
        req;
      for row = 0 to n - 1 do
        for col = 0 to n - 1 do
          if
            Matrix_clock.get al ~row ~col
            < Matrix_clock.get s.last_al ~row ~col
          then
            add "al-monotone" "AL[%d][%d] went from %d to %d" row col
              (Matrix_clock.get s.last_al ~row ~col)
              (Matrix_clock.get al ~row ~col);
          if
            Matrix_clock.get pal ~row ~col
            < Matrix_clock.get s.last_pal ~row ~col
          then
            add "pal-monotone" "PAL[%d][%d] went from %d to %d" row col
              (Matrix_clock.get s.last_pal ~row ~col)
              (Matrix_clock.get pal ~row ~col)
        done
      done
    end;
    s.seen_step <- true;
    s.expect_cid <- Some (Entity.config e).Config.cid;
    s.last_seq <- seq;
    s.last_req <- req;
    s.last_al <- al;
    s.last_pal <- pal;
    List.rev !out

  let note_accept t ~entity (d : Pdu.data) =
    let s = t.slots.(entity) in
    match s.expect_cid with
    | Some c when d.cid <> c ->
      [
        {
          entity;
          invariant = "no-cross-epoch-delivery";
          detail =
            Printf.sprintf
              "(%d,%d) accepted with cid %d but the entity expects %d" d.src
              d.seq d.cid c;
        };
      ]
    | _ -> []

  let note_view_change t ~entity =
    let s = t.slots.(entity) in
    (* A committed view change replaces the entity: ranks remap, clocks
       resize, and sequence numbers the closing epoch never accepted are
       legitimately reused. Per-slot history is therefore per-epoch — the
       next {!note_step} re-baselines against the new-view entity. Stale
       old-epoch traffic stays covered: it carries the closed epoch's cid
       and trips [no-cross-epoch-delivery] above. *)
    s.delivered_rev <- [];
    Hashtbl.reset s.delivered;
    s.seen_step <- false;
    s.expect_cid <- None

  let delivered_count t ~entity = Hashtbl.length t.slots.(entity).delivered
end
