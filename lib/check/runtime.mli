(** Runtime assertion mode: thread the full {!Invariants} catalog into live
    entities.

    The built-in {!Repro_core.Config.check_level} assertions cover what an
    entity can see about itself; installing this runtime adds the external
    catalog and the cross-step/delivery-order {!Invariants.Monitor}. Checks
    fire after every protocol step (the entity calls them through its step
    checker, which runs only at [Paranoid]) and raise
    {!Repro_core.Entity.Protocol_invariant} on the first violation —
    fail-stop debugging, not production error handling.

    {!Repro_harness.Experiment.run} installs this automatically on every
    entity when the experiment's protocol config says [Paranoid]. *)

val install :
  ?monitor:Invariants.Monitor.t -> Repro_core.Entity.t -> unit
(** Install the catalog as [e]'s step checker; with [monitor], also watch
    acknowledgments for exactly-once and causal delivery order. Effective
    only when the entity runs at [check_level = Paranoid]. *)

val install_cluster : Repro_core.Cluster.t -> unit
(** {!install} on every entity of the cluster, sharing one monitor. *)
