(** [colint]'s core: lint a recorded execution trace against the CO service
    properties, with no access to protocol state.

    The linter rebuilds a happened-before relation from the trace itself —
    [a -> b] iff they share a source and [a] was submitted first, or [a] was
    delivered at [b]'s source strictly before [b] was submitted — and takes
    its transitive closure. This under-approximates true causality only
    where the trace is silent, so every reported inversion is a real
    violation; it needs the {!Repro_sim.Trace.Submitted} events the harness
    records (traces without them still get per-source FIFO and
    exactly-once checking).

    Checks, incremental over the event sequence (the first issue's [index]
    is the first violating prefix):
    - exactly-once: no tag delivered twice at one entity;
    - provenance: no tag delivered that was never submitted;
    - causal order: no delivery inverts happened-before at any entity;
    - crash windows: no delivery or submission stamped at an entity between
      its {!Repro_sim.Trace.Crashed} and the matching
      {!Repro_sim.Trace.Restarted} (and the crash/restart events must pair
      up);
    - completeness (opt-in, for runs-to-quiescence): every submitted tag
      delivered at every entity. *)

type issue = { index : int; entity : int; message : string }
(** [index] is the 0-based position of the offending event in the trace
    (or the trace length for completeness issues). *)

val pp_issue : Format.formatter -> issue -> unit

val lint :
  ?complete:bool -> ?n:int -> Repro_sim.Trace.event list -> issue list
(** [complete] defaults to [false]; [n] (the cluster size) defaults to the
    highest entity id seen plus one and only matters for completeness. *)

val lint_trace :
  ?complete:bool -> ?n:int -> Repro_sim.Trace.t -> issue list
