open Repro_core
module Pdu = Repro_pdu.Pdu
module Codec = Repro_pdu.Codec

(* One scripted membership change, committed by an explicit [Cut] event once
   the epoch-0 script is exhausted and the members have reconciled. *)
type churn = Join | Leave of int

type config = {
  n : int;
  script : (int * string) list;
  churn : churn option;
  post_script : (int * string) list;
  max_drops : int;
  max_fires : int;
  max_states : int;
  max_depth : int;
  por : bool;
  protocol : Config.t;
  on_system : Entity.t array -> unit;
}

let default_config ~n =
  {
    n;
    script = List.init n (fun i -> (i mod n, Printf.sprintf "m%d" i));
    churn = None;
    post_script = [];
    max_drops = 0;
    (* Timer fires are budgeted like drops. Without a bound the heartbeat
       regenerates the alphabet forever: every fire may emit a sequenced
       empty, every empty provokes a confirmation, and the interleavings of
       that traffic dwarf the protocol logic under test. Even one mid-flight
       fire costs roughly an order of magnitude of states, so the default is
       none; budget fires explicitly in runs scoped to afford them. *)
    max_fires = 0;
    max_states = 200_000;
    max_depth = 200;
    por = true;
    protocol =
      {
        Config.default with
        defer = Config.Immediate;
        check_level = Config.Off;
        (* A tight window bounds the sequenced empties the heartbeat can
           emit before the window closes (at most W+1 per entity), which is
           what keeps the state space small-scope. W=2 still exercises
           window closure, flow blocking and sliding. *)
        window = 2;
      };
    on_system = ignore;
  }

(* Transition alphabet. Deliver/Drop identify the transmission by its wire
   encoding, not by a queue position: replay is deterministic, the in-flight
   multiset at a given prefix is always the same, and — crucially for sleep
   sets — the identity of a pending event survives unrelated events that
   grow the in-flight lists. *)
type event =
  | Submit
  | Deliver of { dst : int; pdu : string }
  | Drop of { dst : int; pdu : string }
  | Fire of { entity : int }
  | Cut
      (* Commit the configured membership change: close epoch 0 at the
         reconciled REQ cut and rebuild the next view's entities from
         remapped bootstrap checkpoints. Old-epoch copies still in flight
         stay in flight — they are exactly the stragglers the entity-level
         cid guard (and the no-cross-epoch-delivery invariant) must fence. *)

type violation_report = {
  violation : Invariants.violation;
  schedule : string list;
}

type outcome = {
  states : int;
  transitions : int;
  max_depth_seen : int;
  truncated : bool;
  violation : violation_report option;
}

(* [entities]/[inflight]/[timers] are replaced wholesale by [Cut]: the new
   view may have a different size, and abandoning the old timer queues is
   the explorer's analog of the membership layer's generation guard. *)
type sys = {
  cfg : config;
  mutable entities : Entity.t array;
  mutable inflight : string list array; (* sorted encodings, per destination *)
  mutable timers : (int * (unit -> unit)) Queue.t array;
      (* (delay label, action) *)
  monitor : Invariants.Monitor.t;
  mutable script_pos : int;
  mutable post_pos : int;
  mutable epoch : int;
  mutable drops_used : int;
  mutable fires_used : int;
  mutable deep_checks : bool;
      (* The full catalog runs only on a path's last event: every proper
         prefix was already checked when its own DFS node was explored, so
         replaying it needs the (cheap, stateful) monitor bookkeeping but
         not the O(log²) structural invariants again. *)
  mutable violation : Invariants.violation option;
}

let record sys = function
  | [] -> ()
  | v :: _ -> if sys.violation = None then sys.violation <- Some v

(* Entities run against a frozen clock (now = 0): interleaving, not timing,
   is the state space. Timers become explicit Fire events, fired per entity
   in arming order; the spacing checks of [Deferred] confirmation never pass
   under a frozen clock, so the explorer requires Immediate or Never. *)
let monitor_slots cfg =
  (* A join adds a rank, so the monitor needs one slot beyond the initial
     view; ranks freed by a leave simply go quiet. *)
  match cfg.churn with Some Join -> cfg.n + 1 | Some (Leave _) | None -> cfg.n

(* Actions read [sys.inflight]/[sys.timers] through the record, so entities
   built after a [Cut] target the replaced arrays, not the epoch-0 ones. *)
let actions_for sys ~id ~view_n =
  let put ~dst s =
    sys.inflight.(dst) <- List.merge String.compare [ s ] sys.inflight.(dst)
  in
  {
    Entity.broadcast =
      (fun pdu ->
        let s = Bytes.to_string (Codec.encode pdu) in
        for dst = 0 to view_n - 1 do
          put ~dst s
        done);
    unicast = (fun ~dst pdu -> put ~dst (Bytes.to_string (Codec.encode pdu)));
    deliver = (fun _ -> ());
    now = (fun () -> 0);
    set_timer = (fun ~delay f -> Queue.add (delay, f) sys.timers.(id));
    available_buffer = (fun () -> sys.cfg.protocol.Config.initial_buf);
  }

let register sys id e =
  Entity.add_observer e (function
    | Entity.Acknowledged d ->
      record sys (Invariants.Monitor.note_delivery sys.monitor ~entity:id d)
    | Entity.Accepted d ->
      record sys (Invariants.Monitor.note_accept sys.monitor ~entity:id d)
    | Entity.Preacknowledged _ | Entity.Gap_detected _ | Entity.Ret_answered _
      ->
      ());
  (* Baseline snapshot so the first real step has monotonicity cover. *)
  ignore (Invariants.Monitor.note_step sys.monitor e)

let make_sys cfg =
  let sys =
    {
      cfg;
      entities = [||];
      inflight = Array.make cfg.n [];
      timers = Array.init cfg.n (fun _ -> Queue.create ());
      monitor = Invariants.Monitor.create ~n:(monitor_slots cfg);
      script_pos = 0;
      post_pos = 0;
      epoch = 0;
      drops_used = 0;
      fires_used = 0;
      deep_checks = true;
      violation = None;
    }
  in
  sys.entities <-
    Array.init cfg.n (fun id ->
        Entity.create ~config:cfg.protocol ~id ~n:cfg.n
          ~actions:(actions_for sys ~id ~view_n:cfg.n));
  Array.iteri (fun id e -> register sys id e) sys.entities;
  cfg.on_system sys.entities;
  sys

let sender_memo : (string, int) Hashtbl.t = Hashtbl.create 256

let sender_of pdu =
  match Hashtbl.find_opt sender_memo pdu with
  | Some src -> src
  | None ->
    (match Codec.decode (Bytes.of_string pdu) with
    | Ok p ->
      let src = Pdu.src p in
      Hashtbl.add sender_memo pdu src;
      src
    | Error _ -> invalid_arg "Explorer: undecodable in-flight PDU")

let remove_occurrence list s =
  let rec go = function
    | [] -> invalid_arg "Explorer: event references a PDU no longer in flight"
    | x :: rest -> if String.equal x s then rest else x :: go rest
  in
  go list

let post sys id =
  if sys.deep_checks then
    record sys (Invariants.check_entity sys.entities.(id));
  (* note_step must run on every step regardless — it advances the
     monotonicity snapshots the next step is judged against. *)
  record sys (Invariants.Monitor.note_step sys.monitor sys.entities.(id))

let next_submission sys =
  if sys.script_pos < List.length sys.cfg.script then
    Some (List.nth sys.cfg.script sys.script_pos)
  else if sys.epoch > 0 then List.nth_opt sys.cfg.post_script sys.post_pos
  else None

let drained e =
  Entity.undelivered_data e = 0
  && Entity.pending_count e = 0
  && Entity.queued_requests e = 0

(* The barrier's commit precondition, explorer-style: the epoch-0 script is
   spent, every member has drained its protocol work and all REQ vectors
   agree — the reconciled cut. Copies may still sit in flight: duplicates
   of already-accepted PDUs (the stale stragglers the new epoch must fence)
   and copies nobody accepted, which the cut uniformly forgets — legal
   under view synchrony, since no member delivered them. *)
let reconciled sys =
  let r0 = Entity.req sys.entities.(0) in
  Array.for_all (fun e -> drained e && Entity.req e = r0) sys.entities

let cut_enabled sys =
  sys.cfg.churn <> None && sys.epoch = 0
  && sys.script_pos >= List.length sys.cfg.script
  && reconciled sys

let do_cut sys =
  let old = sys.entities in
  let n_old = Array.length old in
  let r = Entity.req old.(0) in
  let epoch = sys.epoch + 1 in
  let n_new, map =
    match sys.cfg.churn with
    | Some Join -> (n_old + 1, fun k -> if k < n_old then Some k else None)
    | Some (Leave l) -> (n_old - 1, fun k -> Some (if k < l then k else k + 1))
    | None -> assert false
  in
  let inv = Array.make n_old (-1) in
  for k = 0 to n_new - 1 do
    match map k with Some o -> inv.(o) <- k | None -> ()
  done;
  let req' =
    Array.init n_new (fun k -> match map k with Some o -> r.(o) | None -> 1)
  in
  let remap_vec v =
    Array.init n_new (fun k -> match map k with Some o -> v.(o) | None -> 1)
  in
  (* Mirror of Group.translate: only the sub-cut history of surviving
     sources crosses the boundary, re-homed into the new rank space. *)
  let headers_of e =
    List.filter_map
      (fun (src, seq, ack) ->
        if inv.(src) >= 0 && seq < r.(src) then
          Some (inv.(src), seq, remap_vec ack)
        else None)
      (Entity.header_entries e)
  in
  let config' =
    {
      sys.cfg.protocol with
      Config.cid =
        Repro_member.Group.epoch_cid ~cid:sys.cfg.protocol.Config.cid ~epoch;
      epoch;
    }
  in
  (* Survivors keep their queues of stale old-epoch copies under their new
     rank; the joiner starts clean; the leaver's queue dies with its NIC.
     Fresh timer queues are the explorer's generation guard: a closed
     epoch's armed timers never fire. *)
  sys.inflight <-
    Array.init n_new (fun k ->
        match map k with Some o -> sys.inflight.(o) | None -> []);
  sys.timers <- Array.init n_new (fun _ -> Queue.create ());
  sys.epoch <- epoch;
  (* The joiner restores the very bytes the sponsor (lowest-ranked
     survivor) would build for its rank — Group ships them as the
     co-checkpoint-v1 state transfer. *)
  let sponsor = match map 0 with Some o -> o | None -> assert false in
  sys.entities <-
    Array.init n_new (fun k ->
        let basis =
          match map k with Some o -> old.(o) | None -> old.(sponsor)
        in
        let blob =
          Entity.bootstrap_checkpoint ~config:config' ~id:k ~n:n_new ~req:req'
            ~headers:(headers_of basis)
        in
        match
          Entity.restore ~expect_id:k ~expect_n:n_new ~config:config'
            ~actions:(actions_for sys ~id:k ~view_n:n_new)
            blob
        with
        | Ok e -> e
        | Error err ->
          invalid_arg
            (Format.asprintf "Explorer: cut bootstrap rejected: %a"
               Entity.pp_restore_error err));
  for slot = 0 to monitor_slots sys.cfg - 1 do
    Invariants.Monitor.note_view_change sys.monitor ~entity:slot
  done;
  Array.iteri
    (fun id e ->
      register sys id e;
      Entity.kick e)
    sys.entities

let apply sys ev =
  let step id f =
    try
      f ();
      post sys id
    with
    | Entity.Protocol_invariant detail ->
      record sys
        [ { Invariants.entity = id; invariant = "runtime-assertion"; detail } ]
    | Invalid_argument detail | Failure detail ->
      (* An entity crash is a counterexample, not a checker failure: report
         it with its schedule instead of aborting the search. A seeded
         [Skip_epoch_guard] dies here when a differently-sized stale
         straggler reaches the clock code — the crash is the point: the
         fence is what keeps mis-shaped closed-epoch PDUs out. *)
      record sys
        [ { Invariants.entity = id; invariant = "runtime-exception"; detail } ]
  in
  match ev with
  | Submit ->
    let src, payload =
      match next_submission sys with
      | Some x -> x
      | None -> invalid_arg "Explorer: Submit with exhausted scripts"
    in
    if sys.script_pos < List.length sys.cfg.script then
      sys.script_pos <- sys.script_pos + 1
    else sys.post_pos <- sys.post_pos + 1;
    step src (fun () -> ignore (Entity.submit sys.entities.(src) payload))
  | Cut ->
    (try
       do_cut sys;
       Array.iteri (fun id _ -> post sys id) sys.entities
     with Entity.Protocol_invariant detail ->
       record sys
         [ { Invariants.entity = -1; invariant = "runtime-assertion"; detail } ])
  | Deliver { dst; pdu } ->
    sys.inflight.(dst) <- remove_occurrence sys.inflight.(dst) pdu;
    let p =
      match Codec.decode (Bytes.of_string pdu) with
      | Ok p -> p
      | Error _ -> invalid_arg "Explorer: undecodable in-flight PDU"
    in
    step dst (fun () -> Entity.receive sys.entities.(dst) p)
  | Drop { dst; pdu } ->
    sys.inflight.(dst) <- remove_occurrence sys.inflight.(dst) pdu;
    sys.drops_used <- sys.drops_used + 1
  | Fire { entity } ->
    let _, f = Queue.pop sys.timers.(entity) in
    sys.fires_used <- sys.fires_used + 1;
    step entity f

let pdu_brief pdu =
  match Codec.decode (Bytes.of_string pdu) with
  | Ok p -> Pdu.to_string p
  | Error _ -> "<undecodable>"

let describe sys = function
  | Submit ->
    (match next_submission sys with
    | Some (src, payload) ->
      Printf.sprintf "submit src=%d payload=%S" src payload
    | None -> "submit <exhausted>")
  | Deliver { dst; pdu } ->
    Printf.sprintf "deliver dst=%d %s" dst (pdu_brief pdu)
  | Drop { dst; pdu } -> Printf.sprintf "drop dst=%d %s" dst (pdu_brief pdu)
  | Fire { entity } -> Printf.sprintf "fire entity=%d" entity
  | Cut ->
    Printf.sprintf "cut: commit epoch %d (%s)" (sys.epoch + 1)
      (match sys.cfg.churn with
      | Some Join ->
        Printf.sprintf "join as rank %d" (Array.length sys.entities)
      | Some (Leave l) -> Printf.sprintf "leave of rank %d" l
      | None -> "no churn configured")

(* Entities are mutable and unclonable, so DFS re-executes the event prefix
   from a fresh system for every node — O(depth) work per state, traded for
   not having to write (and trust) a deep-copy of the entity. *)
(* Fast path: no schedule strings. Descriptions are rebuilt by
   [describe_path] only for the single path that violated. *)
let replay cfg path =
  let sys = make_sys cfg in
  let last = List.length path - 1 in
  List.iteri
    (fun i ev ->
      if sys.violation = None then begin
        sys.deep_checks <- i = last;
        apply sys ev
      end)
    path;
  sys.deep_checks <- true;
  sys

let describe_path cfg path =
  let sys = make_sys cfg in
  let descr = ref [] in
  List.iter
    (fun ev ->
      if sys.violation = None then begin
        descr := describe sys ev :: !descr;
        apply sys ev
      end)
    path;
  List.rev !descr

let enabled sys =
  let cfg = sys.cfg in
  let n = Array.length sys.entities in
  let evs = ref [] in
  if cut_enabled sys then evs := Cut :: !evs;
  for e = n - 1 downto 0 do
    if sys.fires_used < cfg.max_fires && not (Queue.is_empty sys.timers.(e))
    then evs := Fire { entity = e } :: !evs
  done;
  for dst = n - 1 downto 0 do
    (* Identical retransmissions in flight are one action: deduplicate. *)
    let distinct = List.sort_uniq String.compare sys.inflight.(dst) in
    List.iter
      (fun pdu ->
        (* [sender_of <> dst] keeps loopback copies undroppable. Post-cut
           the comparison is against the *new* rank — close enough: a
           stale copy is guard-dropped on delivery anyway. *)
        if sys.drops_used < cfg.max_drops && sender_of pdu <> dst then
          evs := Drop { dst; pdu } :: !evs;
        evs := Deliver { dst; pdu } :: !evs)
      (List.rev distinct)
  done;
  if next_submission sys <> None then evs := Submit :: !evs;
  !evs

(* Dependence relation for sleep-set reduction. Independent events commute
   (same resulting state either order) and never disable each other:
   - events driving different entities commute — a step only mutates its own
     entity plus *appends* to in-flight lists, and Deliver identity is the
     encoding, which appends do not disturb;
   - Fire{e} always means "oldest pending timer of e": other events only
     append to e's timer queue, so the identity is stable too;
   - Drop touches no entity; it conflicts only with the budget (other Drops)
     and with consuming the same transmission. *)
let dependent sys e1 e2 =
  let entity_of = function
    | Submit -> Option.map fst (next_submission sys)
    | Deliver { dst; _ } -> Some dst
    | Drop _ -> None
    | Fire { entity } -> Some entity
    | Cut -> None
  in
  match (e1, e2) with
  (* Cut replaces every entity, every queue and the epoch: it commutes
     with nothing. *)
  | Cut, _ | _, Cut -> true
  | Submit, Submit -> true
  | Drop _, Drop _ -> true
  (* Fires share a budget, so one can disable another: dependent. *)
  | Fire _, Fire _ -> true
  | Drop { dst = d1; pdu = p1 }, Deliver { dst = d2; pdu = p2 }
  | Deliver { dst = d2; pdu = p2 }, Drop { dst = d1; pdu = p1 } ->
    d1 = d2 && String.equal p1 p2
  | Drop _, (Submit | Fire _) | (Submit | Fire _), Drop _ -> false
  | _ -> (
    match (entity_of e1, entity_of e2) with
    | Some a, Some b -> a = b
    | _ -> false)

exception Found of violation_report

let subset a b = List.for_all (fun x -> List.mem x b) a

let run cfg =
  if cfg.n < 2 then invalid_arg "Explorer.run: n must be >= 2";
  (match cfg.protocol.Config.defer with
  | Config.Deferred _ ->
    invalid_arg
      "Explorer.run: Deferred confirmation stalls under the frozen clock; \
       use Immediate or Never"
  | Config.Immediate | Config.Never -> ());
  List.iter
    (fun (src, _) ->
      if src < 0 || src >= cfg.n then
        invalid_arg "Explorer.run: script source out of range")
    cfg.script;
  (match cfg.churn with
  | Some (Leave l) ->
    if l < 0 || l >= cfg.n then
      invalid_arg "Explorer.run: leave rank out of range";
    if cfg.n - 1 < 2 then
      invalid_arg "Explorer.run: a leave must keep at least 2 members"
  | Some Join | None -> ());
  if cfg.post_script <> [] && cfg.churn = None then
    invalid_arg "Explorer.run: post_script requires churn";
  let post_n =
    match cfg.churn with
    | Some Join -> cfg.n + 1
    | Some (Leave _) -> cfg.n - 1
    | None -> cfg.n
  in
  List.iter
    (fun (src, _) ->
      if src < 0 || src >= post_n then
        invalid_arg "Explorer.run: post-script source out of range")
    cfg.post_script;
  let visited : (string, event list) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let max_depth_seen = ref 0 in
  let truncated = ref false in
  let rec explore path sleep =
    if List.length path > cfg.max_depth then truncated := true
    else begin
      let sys = replay cfg path in
      (match sys.violation with
      | Some violation ->
        raise (Found { violation; schedule = describe_path cfg path })
      | None -> ());
      let key = state_key sys in
      let proceed =
        match Hashtbl.find_opt visited key with
        | Some stored when subset stored sleep -> false
        | Some stored ->
          (* Seen before, but with more futures suppressed than now: the
             remembered sleep set shrinks to the intersection and the state
             is re-expanded so nothing stays unexplored. *)
          Hashtbl.replace visited key
            (List.filter (fun e -> List.mem e sleep) stored);
          true
        | None ->
          Hashtbl.add visited key sleep;
          incr states;
          true
      in
      if proceed then begin
        if !states > cfg.max_states then truncated := true
        else begin
          let d = List.length path in
          if d > !max_depth_seen then max_depth_seen := d;
          let evs = enabled sys in
          let evs =
            if cfg.por then
              List.filter (fun e -> not (List.mem e sleep)) evs
            else evs
          in
          let sleeping = ref sleep in
          List.iter
            (fun e ->
              incr transitions;
              let child_sleep =
                if cfg.por then
                  List.filter (fun e' -> not (dependent sys e e')) !sleeping
                else []
              in
              explore (path @ [ e ]) child_sleep;
              if cfg.por then sleeping := e :: !sleeping)
            evs
        end
      end
    end
  and state_key sys =
    (* Timer queues enter only by length: which timers are pending is
       already in the signature (the armed flags), their delays are
       meaningless under the frozen clock, and their firing order commutes —
       every pending closure reads and writes disjoint entity state, so any
       order reaches the same states. *)
    let parts = ref [] in
    for id = Array.length sys.entities - 1 downto 0 do
      parts :=
        Entity.signature sys.entities.(id)
        :: string_of_int (Queue.length sys.timers.(id))
        :: string_of_int (List.length sys.inflight.(id))
        :: (sys.inflight.(id) @ !parts)
    done;
    State_hash.digest
      (string_of_int sys.script_pos
      :: string_of_int sys.post_pos
      :: string_of_int sys.epoch
      :: string_of_int sys.drops_used
      :: string_of_int sys.fires_used
      :: !parts)
  in
  match explore [] [] with
  | () ->
    {
      states = !states;
      transitions = !transitions;
      max_depth_seen = !max_depth_seen;
      truncated = !truncated;
      violation = None;
    }
  | exception Found report ->
    {
      states = !states;
      transitions = !transitions;
      max_depth_seen = !max_depth_seen;
      truncated = !truncated;
      violation = Some report;
    }

let pp_outcome ppf (o : outcome) =
  match o.violation with
  | None ->
    Format.fprintf ppf
      "clean: %d states, %d transitions, max depth %d%s" o.states
      o.transitions o.max_depth_seen
      (if o.truncated then " (TRUNCATED: budget exhausted)" else "")
  | Some r ->
    Format.fprintf ppf
      "@[<v>VIOLATION after %d states: %a@,violating schedule:@,%a@]" o.states
      Invariants.pp_violation r.violation
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
           Format.fprintf ppf "  %s" s))
      r.schedule
