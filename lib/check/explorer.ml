open Repro_core
module Pdu = Repro_pdu.Pdu
module Codec = Repro_pdu.Codec

type config = {
  n : int;
  script : (int * string) list;
  max_drops : int;
  max_fires : int;
  max_states : int;
  max_depth : int;
  por : bool;
  protocol : Config.t;
  on_system : Entity.t array -> unit;
}

let default_config ~n =
  {
    n;
    script = List.init n (fun i -> (i mod n, Printf.sprintf "m%d" i));
    max_drops = 0;
    (* Timer fires are budgeted like drops. Without a bound the heartbeat
       regenerates the alphabet forever: every fire may emit a sequenced
       empty, every empty provokes a confirmation, and the interleavings of
       that traffic dwarf the protocol logic under test. Even one mid-flight
       fire costs roughly an order of magnitude of states, so the default is
       none; budget fires explicitly in runs scoped to afford them. *)
    max_fires = 0;
    max_states = 200_000;
    max_depth = 200;
    por = true;
    protocol =
      {
        Config.default with
        defer = Config.Immediate;
        check_level = Config.Off;
        (* A tight window bounds the sequenced empties the heartbeat can
           emit before the window closes (at most W+1 per entity), which is
           what keeps the state space small-scope. W=2 still exercises
           window closure, flow blocking and sliding. *)
        window = 2;
      };
    on_system = ignore;
  }

(* Transition alphabet. Deliver/Drop identify the transmission by its wire
   encoding, not by a queue position: replay is deterministic, the in-flight
   multiset at a given prefix is always the same, and — crucially for sleep
   sets — the identity of a pending event survives unrelated events that
   grow the in-flight lists. *)
type event =
  | Submit
  | Deliver of { dst : int; pdu : string }
  | Drop of { dst : int; pdu : string }
  | Fire of { entity : int }

type violation_report = {
  violation : Invariants.violation;
  schedule : string list;
}

type outcome = {
  states : int;
  transitions : int;
  max_depth_seen : int;
  truncated : bool;
  violation : violation_report option;
}

type sys = {
  cfg : config;
  entities : Entity.t array;
  mutable inflight : string list array; (* sorted encodings, per destination *)
  timers : (int * (unit -> unit)) Queue.t array; (* (delay label, action) *)
  monitor : Invariants.Monitor.t;
  mutable script_pos : int;
  mutable drops_used : int;
  mutable fires_used : int;
  mutable deep_checks : bool;
      (* The full catalog runs only on a path's last event: every proper
         prefix was already checked when its own DFS node was explored, so
         replaying it needs the (cheap, stateful) monitor bookkeeping but
         not the O(log²) structural invariants again. *)
  mutable violation : Invariants.violation option;
}

let record sys = function
  | [] -> ()
  | v :: _ -> if sys.violation = None then sys.violation <- Some v

(* Entities run against a frozen clock (now = 0): interleaving, not timing,
   is the state space. Timers become explicit Fire events, fired per entity
   in arming order; the spacing checks of [Deferred] confirmation never pass
   under a frozen clock, so the explorer requires Immediate or Never. *)
let make_sys cfg =
  let inflight = Array.make cfg.n [] in
  let timers = Array.init cfg.n (fun _ -> Queue.create ()) in
  let monitor = Invariants.Monitor.create ~n:cfg.n in
  let put ~dst s =
    inflight.(dst) <- List.merge String.compare [ s ] inflight.(dst)
  in
  let entities =
    Array.init cfg.n (fun id ->
        let actions =
          {
            Entity.broadcast =
              (fun pdu ->
                let s = Bytes.to_string (Codec.encode pdu) in
                for dst = 0 to cfg.n - 1 do
                  put ~dst s
                done);
            unicast =
              (fun ~dst pdu -> put ~dst (Bytes.to_string (Codec.encode pdu)));
            deliver = (fun _ -> ());
            now = (fun () -> 0);
            set_timer = (fun ~delay f -> Queue.add (delay, f) timers.(id));
            available_buffer = (fun () -> cfg.protocol.Config.initial_buf);
          }
        in
        Entity.create ~config:cfg.protocol ~id ~n:cfg.n ~actions)
  in
  let sys =
    {
      cfg;
      entities;
      inflight;
      timers;
      monitor;
      script_pos = 0;
      drops_used = 0;
      fires_used = 0;
      deep_checks = true;
      violation = None;
    }
  in
  Array.iteri
    (fun id e ->
      Entity.add_observer e (function
        | Entity.Acknowledged d ->
          record sys (Invariants.Monitor.note_delivery monitor ~entity:id d)
        | Entity.Accepted _ | Entity.Preacknowledged _ | Entity.Gap_detected _
        | Entity.Ret_answered _ ->
          ());
      (* Baseline snapshot so the first real step has monotonicity cover. *)
      ignore (Invariants.Monitor.note_step monitor e))
    entities;
  cfg.on_system entities;
  sys

let sender_memo : (string, int) Hashtbl.t = Hashtbl.create 256

let sender_of pdu =
  match Hashtbl.find_opt sender_memo pdu with
  | Some src -> src
  | None ->
    (match Codec.decode (Bytes.of_string pdu) with
    | Ok p ->
      let src = Pdu.src p in
      Hashtbl.add sender_memo pdu src;
      src
    | Error _ -> invalid_arg "Explorer: undecodable in-flight PDU")

let remove_occurrence list s =
  let rec go = function
    | [] -> invalid_arg "Explorer: event references a PDU no longer in flight"
    | x :: rest -> if String.equal x s then rest else x :: go rest
  in
  go list

let post sys id =
  if sys.deep_checks then
    record sys (Invariants.check_entity sys.entities.(id));
  (* note_step must run on every step regardless — it advances the
     monotonicity snapshots the next step is judged against. *)
  record sys (Invariants.Monitor.note_step sys.monitor sys.entities.(id))

let apply sys ev =
  let step id f =
    try
      f ();
      post sys id
    with Entity.Protocol_invariant detail ->
      record sys
        [ { Invariants.entity = id; invariant = "runtime-assertion"; detail } ]
  in
  match ev with
  | Submit ->
    let src, payload = List.nth sys.cfg.script sys.script_pos in
    sys.script_pos <- sys.script_pos + 1;
    step src (fun () -> ignore (Entity.submit sys.entities.(src) payload))
  | Deliver { dst; pdu } ->
    sys.inflight.(dst) <- remove_occurrence sys.inflight.(dst) pdu;
    let p =
      match Codec.decode (Bytes.of_string pdu) with
      | Ok p -> p
      | Error _ -> invalid_arg "Explorer: undecodable in-flight PDU"
    in
    step dst (fun () -> Entity.receive sys.entities.(dst) p)
  | Drop { dst; pdu } ->
    sys.inflight.(dst) <- remove_occurrence sys.inflight.(dst) pdu;
    sys.drops_used <- sys.drops_used + 1
  | Fire { entity } ->
    let _, f = Queue.pop sys.timers.(entity) in
    sys.fires_used <- sys.fires_used + 1;
    step entity f

let pdu_brief pdu =
  match Codec.decode (Bytes.of_string pdu) with
  | Ok p -> Pdu.to_string p
  | Error _ -> "<undecodable>"

let describe sys = function
  | Submit ->
    let src, payload = List.nth sys.cfg.script sys.script_pos in
    Printf.sprintf "submit src=%d payload=%S" src payload
  | Deliver { dst; pdu } ->
    Printf.sprintf "deliver dst=%d %s" dst (pdu_brief pdu)
  | Drop { dst; pdu } -> Printf.sprintf "drop dst=%d %s" dst (pdu_brief pdu)
  | Fire { entity } -> Printf.sprintf "fire entity=%d" entity

(* Entities are mutable and unclonable, so DFS re-executes the event prefix
   from a fresh system for every node — O(depth) work per state, traded for
   not having to write (and trust) a deep-copy of the entity. *)
(* Fast path: no schedule strings. Descriptions are rebuilt by
   [describe_path] only for the single path that violated. *)
let replay cfg path =
  let sys = make_sys cfg in
  let last = List.length path - 1 in
  List.iteri
    (fun i ev ->
      if sys.violation = None then begin
        sys.deep_checks <- i = last;
        apply sys ev
      end)
    path;
  sys.deep_checks <- true;
  sys

let describe_path cfg path =
  let sys = make_sys cfg in
  let descr = ref [] in
  List.iter
    (fun ev ->
      if sys.violation = None then begin
        descr := describe sys ev :: !descr;
        apply sys ev
      end)
    path;
  List.rev !descr

let enabled sys =
  let cfg = sys.cfg in
  let evs = ref [] in
  for e = cfg.n - 1 downto 0 do
    if sys.fires_used < cfg.max_fires && not (Queue.is_empty sys.timers.(e))
    then evs := Fire { entity = e } :: !evs
  done;
  for dst = cfg.n - 1 downto 0 do
    (* Identical retransmissions in flight are one action: deduplicate. *)
    let distinct = List.sort_uniq String.compare sys.inflight.(dst) in
    List.iter
      (fun pdu ->
        if sys.drops_used < cfg.max_drops && sender_of pdu <> dst then
          evs := Drop { dst; pdu } :: !evs;
        evs := Deliver { dst; pdu } :: !evs)
      (List.rev distinct)
  done;
  if sys.script_pos < List.length cfg.script then evs := Submit :: !evs;
  !evs

(* Dependence relation for sleep-set reduction. Independent events commute
   (same resulting state either order) and never disable each other:
   - events driving different entities commute — a step only mutates its own
     entity plus *appends* to in-flight lists, and Deliver identity is the
     encoding, which appends do not disturb;
   - Fire{e} always means "oldest pending timer of e": other events only
     append to e's timer queue, so the identity is stable too;
   - Drop touches no entity; it conflicts only with the budget (other Drops)
     and with consuming the same transmission. *)
let dependent sys e1 e2 =
  let entity_of = function
    | Submit -> Some (fst (List.nth sys.cfg.script sys.script_pos))
    | Deliver { dst; _ } -> Some dst
    | Drop _ -> None
    | Fire { entity } -> Some entity
  in
  match (e1, e2) with
  | Submit, Submit -> true
  | Drop _, Drop _ -> true
  (* Fires share a budget, so one can disable another: dependent. *)
  | Fire _, Fire _ -> true
  | Drop { dst = d1; pdu = p1 }, Deliver { dst = d2; pdu = p2 }
  | Deliver { dst = d2; pdu = p2 }, Drop { dst = d1; pdu = p1 } ->
    d1 = d2 && String.equal p1 p2
  | Drop _, (Submit | Fire _) | (Submit | Fire _), Drop _ -> false
  | _ -> (
    match (entity_of e1, entity_of e2) with
    | Some a, Some b -> a = b
    | _ -> false)

exception Found of violation_report

let subset a b = List.for_all (fun x -> List.mem x b) a

let run cfg =
  if cfg.n < 2 then invalid_arg "Explorer.run: n must be >= 2";
  (match cfg.protocol.Config.defer with
  | Config.Deferred _ ->
    invalid_arg
      "Explorer.run: Deferred confirmation stalls under the frozen clock; \
       use Immediate or Never"
  | Config.Immediate | Config.Never -> ());
  List.iter
    (fun (src, _) ->
      if src < 0 || src >= cfg.n then
        invalid_arg "Explorer.run: script source out of range")
    cfg.script;
  let visited : (string, event list) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let transitions = ref 0 in
  let max_depth_seen = ref 0 in
  let truncated = ref false in
  let rec explore path sleep =
    if List.length path > cfg.max_depth then truncated := true
    else begin
      let sys = replay cfg path in
      (match sys.violation with
      | Some violation ->
        raise (Found { violation; schedule = describe_path cfg path })
      | None -> ());
      let key = state_key sys in
      let proceed =
        match Hashtbl.find_opt visited key with
        | Some stored when subset stored sleep -> false
        | Some stored ->
          (* Seen before, but with more futures suppressed than now: the
             remembered sleep set shrinks to the intersection and the state
             is re-expanded so nothing stays unexplored. *)
          Hashtbl.replace visited key
            (List.filter (fun e -> List.mem e sleep) stored);
          true
        | None ->
          Hashtbl.add visited key sleep;
          incr states;
          true
      in
      if proceed then begin
        if !states > cfg.max_states then truncated := true
        else begin
          let d = List.length path in
          if d > !max_depth_seen then max_depth_seen := d;
          let evs = enabled sys in
          let evs =
            if cfg.por then
              List.filter (fun e -> not (List.mem e sleep)) evs
            else evs
          in
          let sleeping = ref sleep in
          List.iter
            (fun e ->
              incr transitions;
              let child_sleep =
                if cfg.por then
                  List.filter (fun e' -> not (dependent sys e e')) !sleeping
                else []
              in
              explore (path @ [ e ]) child_sleep;
              if cfg.por then sleeping := e :: !sleeping)
            evs
        end
      end
    end
  and state_key sys =
    (* Timer queues enter only by length: which timers are pending is
       already in the signature (the armed flags), their delays are
       meaningless under the frozen clock, and their firing order commutes —
       every pending closure reads and writes disjoint entity state, so any
       order reaches the same states. *)
    let parts = ref [] in
    for id = sys.cfg.n - 1 downto 0 do
      parts :=
        Entity.signature sys.entities.(id)
        :: string_of_int (Queue.length sys.timers.(id))
        :: string_of_int (List.length sys.inflight.(id))
        :: (sys.inflight.(id) @ !parts)
    done;
    State_hash.digest
      (string_of_int sys.script_pos
      :: string_of_int sys.drops_used
      :: string_of_int sys.fires_used
      :: !parts)
  in
  match explore [] [] with
  | () ->
    {
      states = !states;
      transitions = !transitions;
      max_depth_seen = !max_depth_seen;
      truncated = !truncated;
      violation = None;
    }
  | exception Found report ->
    {
      states = !states;
      transitions = !transitions;
      max_depth_seen = !max_depth_seen;
      truncated = !truncated;
      violation = Some report;
    }

let pp_outcome ppf (o : outcome) =
  match o.violation with
  | None ->
    Format.fprintf ppf
      "clean: %d states, %d transitions, max depth %d%s" o.states
      o.transitions o.max_depth_seen
      (if o.truncated then " (TRUNCATED: budget exhausted)" else "")
  | Some r ->
    Format.fprintf ppf
      "@[<v>VIOLATION after %d states: %a@,violating schedule:@,%a@]" o.states
      Invariants.pp_violation r.violation
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
           Format.fprintf ppf "  %s" s))
      r.schedule
