(** The CO protocol's invariant catalog.

    Pure checks over a live {!Repro_core.Entity.t} (structural state
    invariants) plus a {!Monitor} for history properties (cross-step
    monotonicity, exactly-once and causally ordered delivery) that a single
    state snapshot cannot express. Shared by the small-scope model checker
    ({!Explorer}), the runtime assertion mode ({!Runtime}) and the trace
    linter's oracle tests. The catalog and the soundness argument for each
    entry are documented in [docs/checking.md]. *)

type violation = { entity : int; invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit
val to_string : violation -> string

val check_entity : Repro_core.Entity.t -> violation list
(** Evaluate every structural invariant on one entity's current state:

    - [pal-le-al]: PAL ≤ AL pointwise (hence [minpal-le-minal]);
    - [window-bound]: SEQ never runs more than W+1 past [minAL_peers];
    - [req-self]: REQ for self never exceeds the next own sequence number;
    - [rrl-contiguous]: RRL_j is the gap-free run ending at REQ_j − 1;
    - [pending-above-req]: parked out-of-sequence PDUs lie above REQ;
    - [prl-below-minal]: everything in PRL passed the pre-ack gate;
    - [prl-linear-extension]: PRL respects causality-precedence
      ([Transitive] mode only — the paper's [Direct] test legitimately
      misorders relayed chains, DESIGN.md §7).

    Returns all violations found, in catalog order; [[]] means clean. *)

(** History monitor: watches deliveries and state snapshots over a run. *)
module Monitor : sig
  type t

  val create : n:int -> t
  (** [n] is the number of monitor slots — the largest entity id the run
      can ever present, which under dynamic membership may exceed the
      initial view size (a join adds a rank). *)

  val note_delivery :
    t -> entity:int -> Repro_pdu.Pdu.data -> violation list
  (** Record that [entity] acknowledged (delivered) a PDU. Checks
      [no-cross-epoch-delivery] (the PDU's cid matches the delivering
      entity's configured cid as last seen by {!note_step} — a stale
      closed-epoch straggler slipping past the entity's cid guard is a
      membership-isolation bug), [deliver-exactly-once] (keyed by
      [(cid, src, seq)]) and [causal-delivery-order] (no previously
      delivered PDU at the same entity is causally preceded by this one,
      per the Theorem 4.1 direct test — a sound under-approximation of
      happened-before, so every hit is a real inversion). *)

  val note_step : t -> Repro_core.Entity.t -> violation list
  (** Record a between-steps snapshot of the entity; checks that [seq_next],
      REQ, AL and PAL never decrease relative to the previous snapshot. The
      first call per entity only establishes the baseline. *)

  val note_accept : t -> entity:int -> Repro_pdu.Pdu.data -> violation list
(** Check only the cross-epoch fence at {e accept} time. A stale
      closed-epoch PDU slipping past the cid guard is usually accepted but
      never acknowledged (its epoch's acknowledgment chain died at the
      cut), so waiting for {!note_delivery} would miss it. *)

  val note_view_change : t -> entity:int -> unit
  (** Reset [entity]'s slot at a committed membership view change: ranks
      remap, clocks resize and unaccepted sequence numbers are reused
      across the epoch cut, so delivery history and monotonicity baselines
      are per-epoch. Call once per slot when the new-view entity replaces
      the old one; the next {!note_step} re-baselines. Cross-epoch safety
      is still covered — stale traffic carries the closed epoch's cid and
      trips [no-cross-epoch-delivery]. *)

  val delivered_count : t -> entity:int -> int
  (** Distinct PDUs seen delivered at [entity]. *)
end
