let digest parts =
  let b = Buffer.create 512 in
  List.iter
    (fun s ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))
