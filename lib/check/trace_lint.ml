module Trace = Repro_sim.Trace
module Cluster = Repro_core.Cluster

type issue = { index : int; entity : int; message : string }

let pp_issue ppf i =
  Format.fprintf ppf "event %d, entity %d: %s" i.index i.entity i.message

(* Happened-before is rebuilt from the trace alone, with no protocol state:
   a -> b iff they share a source and a was submitted first, or a was
   delivered at b's source strictly before b was submitted. The transitive
   closure of those edges under-approximates true causality only where the
   trace is silent, so every inversion reported is real. *)
type hb = {
  submit : (int, Repro_sim.Simtime.t * int) Hashtbl.t; (* tag -> time, src *)
  prev_same_src : (int, int) Hashtbl.t; (* tag -> previous tag from its src *)
  delivered_before : (int, (Repro_sim.Simtime.t * int) list) Hashtbl.t;
      (* entity -> chronological (time, tag) deliveries *)
  ancestors : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let build_hb events =
  let t =
    {
      submit = Hashtbl.create 64;
      prev_same_src = Hashtbl.create 64;
      delivered_before = Hashtbl.create 16;
      ancestors = Hashtbl.create 64;
    }
  in
  let last_of_src = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Submitted { time; src; tag } ->
        if not (Hashtbl.mem t.submit tag) then begin
          Hashtbl.add t.submit tag (time, src);
          (match Hashtbl.find_opt last_of_src src with
          | Some prev -> Hashtbl.add t.prev_same_src tag prev
          | None -> ());
          Hashtbl.replace last_of_src src tag
        end
      | Trace.Delivered { time; entity; tag } ->
        let prior =
          Option.value ~default:[] (Hashtbl.find_opt t.delivered_before entity)
        in
        Hashtbl.replace t.delivered_before entity ((time, tag) :: prior)
      | Trace.Sent _ | Trace.Arrived _ | Trace.Dropped _ | Trace.Handled _
      | Trace.Crashed _ | Trace.Restarted _ | Trace.Note _ ->
        ())
    events;
  t

let preds t b =
  match Hashtbl.find_opt t.submit b with
  | None -> []
  | Some (t_b, src_b) ->
    let same = Option.to_list (Hashtbl.find_opt t.prev_same_src b) in
    let heard =
      List.filter_map
        (fun (time, tag) ->
          if Repro_sim.Simtime.compare time t_b < 0 then Some tag else None)
        (Option.value ~default:[] (Hashtbl.find_opt t.delivered_before src_b))
    in
    same @ heard

let rec ancestors t b =
  match Hashtbl.find_opt t.ancestors b with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 8 in
    (* Pre-register to stay terminating on (corrupt) cyclic traces. *)
    Hashtbl.add t.ancestors b set;
    List.iter
      (fun a ->
        Hashtbl.replace set a ();
        Hashtbl.iter (fun k () -> Hashtbl.replace set k ()) (ancestors t a))
      (preds t b);
    set

let precedes t x y =
  let sx, qx = Cluster.key_of_tag x in
  let sy, qy = Cluster.key_of_tag y in
  if sx = sy then qx < qy else Hashtbl.mem (ancestors t y) x

let lint ?(complete = false) ?n events =
  let hb = build_hb events in
  let issues = ref [] in
  let add index entity fmt =
    Printf.ksprintf
      (fun message -> issues := { index; entity; message } :: !issues)
      fmt
  in
  let have_submissions = Hashtbl.length hb.submit > 0 in
  let delivered : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let history : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let entities = Hashtbl.create 16 in
  (* Declared crash windows: entity -> down since a Crashed event with no
     matching Restarted yet. A crashed entity must be silent. *)
  let down : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let index = ref (-1) in
  List.iter
    (fun ev ->
      incr index;
      match ev with
      | Trace.Submitted { src; _ } ->
        Hashtbl.replace entities src ();
        if Hashtbl.mem down src then
          add !index src "submission stamped inside a declared crash window"
      | Trace.Crashed { entity; _ } ->
        Hashtbl.replace entities entity ();
        if Hashtbl.mem down entity then
          add !index entity "crash of an already-crashed entity";
        Hashtbl.replace down entity ()
      | Trace.Restarted { entity; _ } ->
        Hashtbl.replace entities entity ();
        if not (Hashtbl.mem down entity) then
          add !index entity "restart without a preceding crash";
        Hashtbl.remove down entity
      | Trace.Delivered { entity; tag; _ } ->
        Hashtbl.replace entities entity ();
        if Hashtbl.mem down entity then
          add !index entity
            "tag %d delivered inside a declared crash window" tag;
        let seen =
          match Hashtbl.find_opt delivered entity with
          | Some s -> s
          | None ->
            let s = Hashtbl.create 64 in
            Hashtbl.add delivered entity s;
            s
        in
        let src, seq = Cluster.key_of_tag tag in
        if Hashtbl.mem seen tag then
          add !index entity "tag %d (src %d, seq %d) delivered twice" tag src
            seq;
        Hashtbl.replace seen tag ();
        if have_submissions && not (Hashtbl.mem hb.submit tag) then
          add !index entity "tag %d delivered but never submitted" tag;
        let earlier =
          Option.value ~default:[] (Hashtbl.find_opt history entity)
        in
        List.iter
          (fun e ->
            if precedes hb tag e then
              add !index entity
                "tag %d delivered after tag %d despite preceding it" tag e)
          earlier;
        Hashtbl.replace history entity (tag :: earlier)
      | Trace.Sent _ | Trace.Arrived _ | Trace.Dropped _ | Trace.Handled _
      | Trace.Note _ ->
        ())
    events;
  if complete then begin
    let count =
      match n with
      | Some n -> n
      | None -> Hashtbl.fold (fun id () acc -> max acc (id + 1)) entities 0
    in
    Hashtbl.iter
      (fun tag _ ->
        for entity = 0 to count - 1 do
          let seen =
            match Hashtbl.find_opt delivered entity with
            | Some s -> Hashtbl.mem s tag
            | None -> false
          in
          if not seen then
            add (List.length events) entity "tag %d was never delivered" tag
        done)
      hb.submit
  end;
  List.rev !issues

let lint_trace ?complete ?n trace = lint ?complete ?n (Trace.events trace)
