(** Sequencer-based totally ordering broadcast with go-back-N recovery.

    The §5 comparison target: "protocols which provide the TO service use
    the go-back-n retransmission scheme where all PDUs following the lost
    PDU are retransmitted". Entity 0 is the sequencer: origins submit to it,
    it assigns a global sequence number and broadcasts. Receivers accept
    only the next-in-sequence broadcast; anything newer is {e discarded}
    (the go-back-N receiver keeps no out-of-order buffer) and answered with
    a NACK, upon which the sequencer rebroadcasts {e everything} from the
    gap onward. Losses are recovered, but at O(window) redundant traffic per
    loss — the shape experiment E4 contrasts with the CO protocol's
    selective retransmission.

    Submissions and NACKs ride the same lossy network; both are retried on a
    timer until acknowledged by progress. *)

type wire

type t

val create :
  Repro_sim.Engine.t -> wire Repro_sim.Network.t -> n:int
  -> retry:Repro_sim.Simtime.t -> t
(** Entity 0 acts as sequencer. [retry] is the resubmission / re-NACK
    period. *)

val broadcast : t -> src:int -> tag:int -> string -> unit
(** Submit a message for total ordering. *)

val deliveries : t -> entity:int -> (Repro_sim.Simtime.t * int) list
(** [(time, tag)] in delivery (= total) order at [entity]. *)

val delivered_tags : t -> entity:int -> int list

val fresh_broadcasts : t -> int
(** Order broadcasts for newly sequenced messages. *)

val retransmissions : t -> int
(** Messages rebroadcast by go-back-N recovery (each counted once per
    rebroadcast, however many receivers needed it). *)

val nacks : t -> int
val discarded : t -> int
(** Out-of-order broadcasts thrown away by receivers. *)

val protocol_errors : t -> int
(** Internal-consistency failures: deliveries attempted with a global
    sequence number other than the receiver's expected one. Always 0 for a
    correct implementation; counted rather than asserted so a regression
    surfaces in reports instead of aborting the run. *)
