module Engine = Repro_sim.Engine
module Network = Repro_sim.Network
module Simtime = Repro_sim.Simtime

type wire =
  | Submit of { origin : int; oseq : int; payload : string; tag : int }
  | Order of { gseq : int; origin : int; payload : string; tag : int }
  | Nack of { expected : int }

type node = {
  id : int;
  mutable expected : int; (* next global sequence number to deliver *)
  mutable max_seen : int; (* highest gseq observed (exclusive bound is +1) *)
  mutable rev_deliveries : (Simtime.t * int) list;
  mutable nack_outstanding : bool;
  mutable pending_submissions : (int * string * int) list; (* oseq, payload, tag *)
  mutable next_oseq : int;
  mutable submit_timer_armed : bool;
}

type sequencer_state = {
  mutable next_gseq : int;
  history : (int, wire) Hashtbl.t; (* gseq -> Order *)
  seen : (int * int, int) Hashtbl.t; (* (origin, oseq) -> gseq dedup *)
}

type t = {
  engine : Engine.t;
  net : wire Network.t;
  nodes : node array;
  seqr : sequencer_state;
  retry : Simtime.t;
  mutable fresh : int;
  mutable rexmit : int;
  mutable nacks : int;
  mutable discarded : int;
  mutable protocol_errors : int;
}

let sequencer_id = 0

let order_out t (o : wire) =
  ignore (Network.broadcast t.net ~src:sequencer_id o)

let sequence t ~origin ~oseq ~payload ~tag =
  match Hashtbl.find_opt t.seqr.seen (origin, oseq) with
  | Some gseq -> (
    (* Duplicate submission: the origin has not seen its own message
       ordered, so the Order broadcast was probably lost — rebroadcast it. *)
    match Hashtbl.find_opt t.seqr.history gseq with
    | Some o ->
      t.rexmit <- t.rexmit + 1;
      order_out t o
    | None -> ())
  | None ->
    let gseq = t.seqr.next_gseq in
    Hashtbl.add t.seqr.seen (origin, oseq) gseq;
    t.seqr.next_gseq <- gseq + 1;
    let o = Order { gseq; origin; payload; tag } in
    Hashtbl.replace t.seqr.history gseq o;
    t.fresh <- t.fresh + 1;
    order_out t o

(* Go-back-N sender: rebroadcast everything from the NACKed point. *)
let go_back_n t ~expected =
  let rec resend gseq =
    if gseq < t.seqr.next_gseq then begin
      (match Hashtbl.find_opt t.seqr.history gseq with
      | Some o ->
        t.rexmit <- t.rexmit + 1;
        order_out t o
      | None -> ());
      resend (gseq + 1)
    end
  in
  resend expected

let rec send_nack t node =
  t.nacks <- t.nacks + 1;
  ignore
    (Network.unicast t.net ~src:node.id ~dst:sequencer_id
       (Nack { expected = node.expected }));
  arm_nack_timer t node

(* Re-NACK while a known message (some gseq we saw out of order) remains
   undelivered: the NACK or the recovery burst itself may have been lost. *)
and arm_nack_timer t node =
  if not node.nack_outstanding then begin
    node.nack_outstanding <- true;
    Engine.schedule_after t.engine ~delay:t.retry (fun () ->
        node.nack_outstanding <- false;
        if node.expected <= node.max_seen then send_nack t node)
  end

(* [gseq <> expected] cannot happen through [on_receive] (it dispatches on
   the comparison), so a mismatch here means the dispatch and the delivery
   path disagree. Count it instead of asserting: a broken baseline should
   show up in the experiment report, not kill the whole comparison run. *)
let deliver_in_order t node ~gseq ~tag =
  if gseq <> node.expected then t.protocol_errors <- t.protocol_errors + 1
  else begin
    node.expected <- node.expected + 1;
    node.rev_deliveries <- (Engine.now t.engine, tag) :: node.rev_deliveries
  end

let rec arm_submit_timer t node =
  if (not node.submit_timer_armed) && node.pending_submissions <> [] then begin
    node.submit_timer_armed <- true;
    Engine.schedule_after t.engine ~delay:t.retry (fun () ->
        node.submit_timer_armed <- false;
        List.iter
          (fun (oseq, payload, tag) ->
            if node.id = sequencer_id then
              sequence t ~origin:node.id ~oseq ~payload ~tag
            else
              ignore
                (Network.unicast t.net ~src:node.id ~dst:sequencer_id
                   (Submit { origin = node.id; oseq; payload; tag })))
          node.pending_submissions;
        arm_submit_timer t node)
  end

let on_receive t node wire =
  match wire with
  | Submit { origin; oseq; payload; tag } ->
    if node.id = sequencer_id then sequence t ~origin ~oseq ~payload ~tag
  | Nack { expected } -> if node.id = sequencer_id then go_back_n t ~expected
  | Order { gseq; origin; payload = _; tag } ->
    if gseq > node.max_seen then node.max_seen <- gseq;
    if gseq < node.expected then () (* duplicate *)
    else if gseq > node.expected then begin
      (* Go-back-N receiver: no out-of-order buffer. *)
      t.discarded <- t.discarded + 1;
      send_nack t node
    end
    else begin
      deliver_in_order t node ~gseq ~tag;
      if origin = node.id then
        node.pending_submissions <-
          List.filter (fun (_, _, tg) -> tg <> tag) node.pending_submissions
    end

let create engine net ~n ~retry =
  if Network.n net <> n then invalid_arg "Tobcast.create: network size mismatch";
  if n < 2 then invalid_arg "Tobcast.create: n must be >= 2";
  let t =
    {
      engine;
      net;
      nodes =
        Array.init n (fun id ->
            {
              id;
              expected = 0;
              max_seen = -1;
              rev_deliveries = [];
              nack_outstanding = false;
              pending_submissions = [];
              next_oseq = 0;
              submit_timer_armed = false;
            });
      seqr =
        { next_gseq = 0; history = Hashtbl.create 256; seen = Hashtbl.create 256 };
      retry;
      fresh = 0;
      rexmit = 0;
      nacks = 0;
      discarded = 0;
      protocol_errors = 0;
    }
  in
  Array.iter
    (fun node ->
      Network.attach net ~id:node.id ~handler:(fun ~src:_ w -> on_receive t node w))
    t.nodes;
  t

let broadcast t ~src ~tag payload =
  let node = t.nodes.(src) in
  let oseq = node.next_oseq in
  node.next_oseq <- oseq + 1;
  node.pending_submissions <- (oseq, payload, tag) :: node.pending_submissions;
  if src = sequencer_id then sequence t ~origin:src ~oseq ~payload ~tag
  else
    ignore
      (Network.unicast t.net ~src ~dst:sequencer_id
         (Submit { origin = src; oseq; payload; tag }));
  arm_submit_timer t node

let deliveries t ~entity = List.rev t.nodes.(entity).rev_deliveries
let delivered_tags t ~entity = List.rev_map snd t.nodes.(entity).rev_deliveries
let fresh_broadcasts t = t.fresh
let retransmissions t = t.rexmit
let nacks t = t.nacks
let discarded t = t.discarded
let protocol_errors t = t.protocol_errors
